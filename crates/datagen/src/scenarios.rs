//! The attack-scenario catalog: scripted event sequences reproducing every
//! behaviour the paper's evaluation investigates.
//!
//! - the **APT case study** of Sec. 6.2 (steps c1–c5: phishing →
//!   malware → privilege escalation → database penetration → exfiltration),
//! - the **second APT** used for the performance evaluation (a1–a5),
//! - the **dependency-tracking behaviours** d1–d3 (Chrome/Java updater
//!   provenance, `info_stealer` ramification across hosts — paper Query 3),
//! - the **real-world malware behaviours** v1–v5 (Trojan.Sysbot,
//!   Trojan.Hooker, Virus.Autorun — paper Table 4), scripted after the
//!   VirusSign behaviour-report style the paper cites, and
//! - the **abnormal system behaviours** s1–s6 (command-history probing,
//!   suspicious web service, frequent network access, trace erasure,
//!   network spike, abnormal file access).
//!
//! Every scenario runs on fixed hosts ([`hosts`]) on fixed days so the
//! benchmark catalog's queries can pin `agentid` and `(at "...")`
//! constraints, and each records its key events in a [`GroundTruth`] map
//! keyed by scenario label.

use crate::util::{at, Emitter};
use aiql_model::{AgentId, EntityKind, EventId, OpType, Timestamp};
use std::collections::HashMap;

/// Fixed host (agent) roles; scenarios require at least 10 hosts.
pub mod hosts {
    /// Mail server (APT case study).
    pub const MAIL: u32 = 0;
    /// Windows client — initial compromise victim.
    pub const WIN_CLIENT: u32 = 1;
    /// Host A of the `info_stealer` ramification (paper Query 3, agentid 2).
    pub const HOST_A: u32 = 2;
    /// Host B of the `info_stealer` ramification (agentid 3).
    pub const HOST_B: u32 = 3;
    /// Web server compromised in the second APT.
    pub const WEB: u32 = 4;
    /// Developer box reached by lateral movement in the second APT.
    pub const DEV: u32 = 5;
    /// Malware sandbox host 1 (v1, v2).
    pub const MAL1: u32 = 6;
    /// Malware sandbox host 2 (v3, v4, v5).
    pub const MAL2: u32 = 7;
    /// Host exhibiting the abnormal behaviours s1–s6.
    pub const ABN: u32 = 8;
    /// SQL database server (APT case study steps c4–c5).
    pub const DB_SERVER: u32 = 9;
}

/// Day index (relative to the simulation base date) all scenarios run on.
pub const ATTACK_DAY: i64 = 1;

/// The APT attacker's command-and-control address (the paper's "XXX.129").
pub const ATTACKER_IP: &str = "192.168.66.129";
/// The second APT's command-and-control address.
pub const ATTACKER_IP2: &str = "203.0.113.66";
/// C2 of the Sysbot samples.
pub const SYSBOT_C2: &str = "5.39.99.2";
/// C2 of the Hooker samples.
pub const HOOKER_C2: &str = "91.121.1.1";
/// Destination of the s3/s5 abnormal network behaviours.
pub const ABN_DST: &str = "198.51.100.7";
/// Destination of the s5 spike.
pub const SPIKE_DST: &str = "198.51.100.9";

/// Key events per scenario label (for ground-truth tests).
pub type GroundTruth = HashMap<String, Vec<EventId>>;

/// Emits every scenario; requires ≥ 10 hosts and ≥ 2 days.
pub fn emit_all(em: &mut Emitter<'_>, base: Timestamp, truth: &mut GroundTruth) {
    apt_case_study(em, base, truth);
    apt2(em, base, truth);
    dependency(em, base, truth);
    malware(em, base, truth);
    abnormal(em, base, truth);
}

fn record(truth: &mut GroundTruth, label: &str, ev: EventId) {
    truth.entry(label.to_string()).or_default().push(ev);
}

/// The Sec. 6.2 APT attack: c1 initial compromise, c2 malware infection,
/// c3 privilege escalation, c4 database-server penetration, c5 exfiltration.
pub fn apt_case_study(em: &mut Emitter<'_>, base: Timestamp, truth: &mut GroundTruth) {
    let wc = AgentId(hosts::WIN_CLIENT);
    let db = AgentId(hosts::DB_SERVER);
    let d = ATTACK_DAY;
    let h = 3600.0;

    // --- c1: Initial compromise (phishing mail with macro Excel) ---------
    let outlook = em.process_as(wc, "outlook.exe", 2001, "bob", true);
    let mailconn = em.conn(wc, "10.0.2.25", 143);
    let xls = em.file(wc, "C:\\Users\\bob\\Downloads\\payroll.xls");
    let e = em.event(
        wc,
        outlook,
        OpType::Read,
        mailconn,
        EntityKind::NetConn,
        at(base, d, 9.0 * h),
        250_000,
    );
    record(truth, "c1", e);
    let e = em.event(
        wc,
        outlook,
        OpType::Write,
        xls,
        EntityKind::File,
        at(base, d, 9.0 * h + 30.0),
        250_000,
    );
    record(truth, "c1", e);
    let excel = em.process_as(wc, "excel.exe", 2002, "bob", true);
    let e = em.event(
        wc,
        outlook,
        OpType::Start,
        excel,
        EntityKind::Process,
        at(base, d, 9.0 * h + 60.0),
        0,
    );
    record(truth, "c1", e);
    em.event(
        wc,
        excel,
        OpType::Read,
        xls,
        EntityKind::File,
        at(base, d, 9.0 * h + 70.0),
        250_000,
    );

    // --- c2: Malware infection (macro downloads and runs a backdoor) -----
    let cmd_wc = em.process_as(wc, "cmd.exe", 2003, "bob", true);
    let e = em.event(
        wc,
        excel,
        OpType::Start,
        cmd_wc,
        EntityKind::Process,
        at(base, d, 9.0 * h + 120.0),
        0,
    );
    record(truth, "c2", e);
    let pwsh = em.process_as(wc, "powershell.exe", 2004, "bob", true);
    let e = em.event(
        wc,
        cmd_wc,
        OpType::Start,
        pwsh,
        EntityKind::Process,
        at(base, d, 9.0 * h + 130.0),
        0,
    );
    record(truth, "c2", e);
    let dl = em.conn(wc, ATTACKER_IP, 80);
    em.event(
        wc,
        pwsh,
        OpType::Read,
        dl,
        EntityKind::NetConn,
        at(base, d, 9.0 * h + 150.0),
        1_400_000,
    );
    let mal_file = em.file(wc, "C:\\Users\\bob\\AppData\\Local\\Temp\\mal.exe");
    let e = em.event(
        wc,
        pwsh,
        OpType::Write,
        mal_file,
        EntityKind::File,
        at(base, d, 9.0 * h + 160.0),
        1_400_000,
    );
    record(truth, "c2", e);
    let mal = em.process_as(wc, "mal.exe", 2005, "bob", false);
    let e = em.event(
        wc,
        pwsh,
        OpType::Start,
        mal,
        EntityKind::Process,
        at(base, d, 9.0 * h + 180.0),
        0,
    );
    record(truth, "c2", e);
    let backdoor = em.conn(wc, ATTACKER_IP, 4444);
    let e = em.event(
        wc,
        mal,
        OpType::Connect,
        backdoor,
        EntityKind::NetConn,
        at(base, d, 9.0 * h + 190.0),
        0,
    );
    record(truth, "c2", e);
    let job = em.file(wc, "C:\\Windows\\Tasks\\mal.job");
    em.event(
        wc,
        mal,
        OpType::Write,
        job,
        EntityKind::File,
        at(base, d, 9.0 * h + 240.0),
        512,
    );

    // --- c3: Privilege escalation (port scan + credential dump) ----------
    for i in 0..20i64 {
        let c = em.conn(wc, &format!("10.0.0.{}", i + 1), 1433);
        let e = em.event(
            wc,
            mal,
            OpType::Connect,
            c,
            EntityKind::NetConn,
            at(base, d, 10.0 * h + i as f64),
            0,
        );
        if i == 0 {
            record(truth, "c3", e);
        }
    }
    let gsec = em.process_as(wc, "gsecdump.exe", 2006, "bob", false);
    let e = em.event(
        wc,
        mal,
        OpType::Start,
        gsec,
        EntityKind::Process,
        at(base, d, 10.0 * h + 300.0),
        0,
    );
    record(truth, "c3", e);
    let sam = em.file(wc, "C:\\Windows\\System32\\config\\SAM");
    em.event(
        wc,
        gsec,
        OpType::Read,
        sam,
        EntityKind::File,
        at(base, d, 10.0 * h + 310.0),
        65_536,
    );
    let creds = em.file(wc, "C:\\Users\\bob\\AppData\\creds.txt");
    let e = em.event(
        wc,
        gsec,
        OpType::Write,
        creds,
        EntityKind::File,
        at(base, d, 10.0 * h + 320.0),
        4_096,
    );
    record(truth, "c3", e);
    em.event(
        wc,
        mal,
        OpType::Read,
        creds,
        EntityKind::File,
        at(base, d, 10.0 * h + 360.0),
        4_096,
    );
    em.event(
        wc,
        mal,
        OpType::Write,
        backdoor,
        EntityKind::NetConn,
        at(base, d, 10.0 * h + 390.0),
        4_096,
    );

    // --- c4: Penetration into the database server -------------------------
    let sqlservr = em.process_as(db, "sqlservr.exe", 3001, "SYSTEM", true);
    let inbound = em.conn(db, "10.0.0.11", 1433);
    let e = em.event(
        db,
        sqlservr,
        OpType::Accept,
        inbound,
        EntityKind::NetConn,
        at(base, d, 11.0 * h),
        0,
    );
    record(truth, "c4", e);
    let cmd_db = em.process_as(db, "cmd.exe", 3002, "SYSTEM", true);
    let e = em.event(
        db,
        sqlservr,
        OpType::Start,
        cmd_db,
        EntityKind::Process,
        at(base, d, 11.0 * h + 60.0),
        0,
    );
    record(truth, "c4", e);
    let vbs = em.file(db, "C:\\Windows\\Temp\\drop.vbs");
    let e = em.event(
        db,
        cmd_db,
        OpType::Write,
        vbs,
        EntityKind::File,
        at(base, d, 11.0 * h + 90.0),
        2_048,
    );
    record(truth, "c4", e);
    let wscript = em.process_as(db, "wscript.exe", 3003, "SYSTEM", true);
    em.event(
        db,
        cmd_db,
        OpType::Start,
        wscript,
        EntityKind::Process,
        at(base, d, 11.0 * h + 120.0),
        0,
    );
    em.event(
        db,
        wscript,
        OpType::Read,
        vbs,
        EntityKind::File,
        at(base, d, 11.0 * h + 130.0),
        2_048,
    );
    let sbblv_file = em.file(db, "C:\\Windows\\Temp\\sbblv.exe");
    let e = em.event(
        db,
        wscript,
        OpType::Write,
        sbblv_file,
        EntityKind::File,
        at(base, d, 11.0 * h + 150.0),
        900_000,
    );
    record(truth, "c4", e);
    let sbblv = em.process_as(db, "sbblv.exe", 3004, "SYSTEM", false);
    let e = em.event(
        db,
        wscript,
        OpType::Start,
        sbblv,
        EntityKind::Process,
        at(base, d, 11.0 * h + 180.0),
        0,
    );
    record(truth, "c4", e);
    let backdoor2 = em.conn(db, ATTACKER_IP, 443);
    em.event(
        db,
        sbblv,
        OpType::Connect,
        backdoor2,
        EntityKind::NetConn,
        at(base, d, 11.0 * h + 200.0),
        0,
    );

    // --- c5: Data exfiltration --------------------------------------------
    let osql = em.process_as(db, "osql.exe", 3005, "SYSTEM", true);
    let e = em.event(
        db,
        cmd_db,
        OpType::Start,
        osql,
        EntityKind::Process,
        at(base, d, 14.0 * h),
        0,
    );
    record(truth, "c5", e);
    let dump = em.file(db, "C:\\MSSQL\\data\\BACKUP1.DMP");
    let e = em.event(
        db,
        sqlservr,
        OpType::Write,
        dump,
        EntityKind::File,
        at(base, d, 14.0 * h + 300.0),
        300_000_000,
    );
    record(truth, "c5", e);
    let e = em.event(
        db,
        sbblv,
        OpType::Read,
        dump,
        EntityKind::File,
        at(base, d, 14.0 * h + 600.0),
        300_000_000,
    );
    record(truth, "c5", e);
    // Beaconing noise (small), then the exfiltration spike (huge): the
    // moving-average anomaly query (paper Query 5) must flag only the spike.
    for i in 0..120i64 {
        em.event(
            db,
            sbblv,
            OpType::Write,
            backdoor2,
            EntityKind::NetConn,
            at(base, d, 14.0 * h + 1200.0 + i as f64 * 10.0),
            1_000,
        );
    }
    for i in 0..3i64 {
        let e = em.event(
            db,
            sbblv,
            OpType::Write,
            backdoor2,
            EntityKind::NetConn,
            at(base, d, 14.0 * h + 2700.0 + i as f64 * 10.0),
            50_000_000,
        );
        record(truth, "c5", e);
    }
}

/// The second APT used in the performance evaluation (a1–a5).
pub fn apt2(em: &mut Emitter<'_>, base: Timestamp, truth: &mut GroundTruth) {
    let web = AgentId(hosts::WEB);
    let dev = AgentId(hosts::DEV);
    let d = ATTACK_DAY;
    let h = 3600.0;

    // a1: drive-by download.
    let firefox = em.process_as(web, "firefox.exe", 4001, "carol", true);
    let evil = em.conn(web, ATTACKER_IP2, 80);
    let e = em.event(
        web,
        firefox,
        OpType::Read,
        evil,
        EntityKind::NetConn,
        at(base, d, 9.5 * h),
        2_000_000,
    );
    record(truth, "a1", e);
    let setup = em.file(web, "C:\\Users\\carol\\Downloads\\setup_flash.exe");
    let e = em.event(
        web,
        firefox,
        OpType::Write,
        setup,
        EntityKind::File,
        at(base, d, 9.5 * h + 20.0),
        2_000_000,
    );
    record(truth, "a1", e);
    let setup_p = em.process_as(web, "setup_flash.exe", 4002, "carol", false);
    let e = em.event(
        web,
        firefox,
        OpType::Start,
        setup_p,
        EntityKind::Process,
        at(base, d, 9.5 * h + 60.0),
        0,
    );
    record(truth, "a1", e);

    // a2: persistence + implant.
    let autorun = em.file(web, "C:\\autorun.inf");
    let e = em.event(
        web,
        setup_p,
        OpType::Write,
        autorun,
        EntityKind::File,
        at(base, d, 9.7 * h),
        128,
    );
    record(truth, "a2", e);
    let updd_file = em.file(web, "C:\\ProgramData\\updd.exe");
    em.event(
        web,
        setup_p,
        OpType::Write,
        updd_file,
        EntityKind::File,
        at(base, d, 9.7 * h + 10.0),
        1_500_000,
    );
    let updd = em.process_as(web, "updd.exe", 4003, "carol", false);
    let e = em.event(
        web,
        setup_p,
        OpType::Start,
        updd,
        EntityKind::Process,
        at(base, d, 9.7 * h + 30.0),
        0,
    );
    record(truth, "a2", e);
    let c2 = em.conn(web, ATTACKER_IP2, 8080);
    em.event(
        web,
        updd,
        OpType::Connect,
        c2,
        EntityKind::NetConn,
        at(base, d, 9.7 * h + 40.0),
        0,
    );

    // a3: recon.
    let sec = em.file(web, "C:\\Windows\\System32\\config\\SECURITY");
    let e = em.event(
        web,
        updd,
        OpType::Read,
        sec,
        EntityKind::File,
        at(base, d, 10.5 * h),
        65_536,
    );
    record(truth, "a3", e);
    for i in 0..15i64 {
        let c = em.conn(web, &format!("10.0.1.{}", i + 1), 22);
        em.event(
            web,
            updd,
            OpType::Connect,
            c,
            EntityKind::NetConn,
            at(base, d, 10.5 * h + 60.0 + i as f64),
            0,
        );
    }

    // a4: lateral movement (cross-host connect, proc → proc).
    let sshd = em.process_as(dev, "sshd", 5001, "root", true);
    let e = em.event(
        web,
        updd,
        OpType::Connect,
        sshd,
        EntityKind::Process,
        at(base, d, 11.5 * h),
        0,
    );
    record(truth, "a4", e);
    let bash = em.process_as(dev, "bash", 5002, "admin", true);
    let e = em.event(
        dev,
        sshd,
        OpType::Start,
        bash,
        EntityKind::Process,
        at(base, d, 11.5 * h + 10.0),
        0,
    );
    record(truth, "a4", e);
    let key = em.file(dev, "/home/admin/.ssh/id_rsa");
    let e = em.event(
        dev,
        bash,
        OpType::Read,
        key,
        EntityKind::File,
        at(base, d, 11.5 * h + 30.0),
        1_700,
    );
    record(truth, "a4", e);

    // a5: staging + exfiltration.
    let stage = em.file(dev, "/tmp/stage.tgz");
    let e = em.event(
        dev,
        bash,
        OpType::Write,
        stage,
        EntityKind::File,
        at(base, d, 13.0 * h),
        80_000_000,
    );
    record(truth, "a5", e);
    let scp = em.process_as(dev, "scp", 5003, "admin", true);
    em.event(
        dev,
        bash,
        OpType::Start,
        scp,
        EntityKind::Process,
        at(base, d, 13.0 * h + 20.0),
        0,
    );
    em.event(
        dev,
        scp,
        OpType::Read,
        stage,
        EntityKind::File,
        at(base, d, 13.0 * h + 30.0),
        80_000_000,
    );
    let out = em.conn(dev, ATTACKER_IP2, 22);
    let e = em.event(
        dev,
        scp,
        OpType::Write,
        out,
        EntityKind::NetConn,
        at(base, d, 13.0 * h + 40.0),
        80_000_000,
    );
    record(truth, "a5", e);
}

/// Dependency-tracking behaviours d1–d3.
pub fn dependency(em: &mut Emitter<'_>, base: Timestamp, truth: &mut GroundTruth) {
    let wc = AgentId(hosts::WIN_CLIENT);
    let d = ATTACK_DAY;
    let h = 3600.0;

    // d1: provenance of a Chrome update executable.
    let services = em.process_as(wc, "services.exe", 2101, "SYSTEM", true);
    let gupdate = em.process_as(wc, "GoogleUpdate.exe", 2102, "SYSTEM", true);
    let e = em.event(
        wc,
        services,
        OpType::Start,
        gupdate,
        EntityKind::Process,
        at(base, d, 8.0 * h),
        0,
    );
    record(truth, "d1", e);
    let gconn = em.conn(wc, "74.125.20.100", 443);
    em.event(
        wc,
        gupdate,
        OpType::Read,
        gconn,
        EntityKind::NetConn,
        at(base, d, 8.0 * h + 10.0),
        40_000_000,
    );
    let chrome_up = em.file(wc, "C:\\Program Files\\Google\\chrome_update.exe");
    let e = em.event(
        wc,
        gupdate,
        OpType::Write,
        chrome_up,
        EntityKind::File,
        at(base, d, 8.0 * h + 30.0),
        40_000_000,
    );
    record(truth, "d1", e);

    // d2: provenance of a Java update executable (services → jusched →
    // jucheck → file, so a three-edge backward walk terminates).
    let jusched = em.process_as(wc, "jusched.exe", 2103, "SYSTEM", true);
    let jucheck = em.process_as(wc, "jucheck.exe", 2104, "SYSTEM", true);
    let e = em.event(
        wc,
        services,
        OpType::Start,
        jusched,
        EntityKind::Process,
        at(base, d, 8.15 * h),
        0,
    );
    record(truth, "d2", e);
    let e = em.event(
        wc,
        jusched,
        OpType::Start,
        jucheck,
        EntityKind::Process,
        at(base, d, 8.2 * h),
        0,
    );
    record(truth, "d2", e);
    let jconn = em.conn(wc, "23.45.67.89", 443);
    em.event(
        wc,
        jucheck,
        OpType::Read,
        jconn,
        EntityKind::NetConn,
        at(base, d, 8.2 * h + 10.0),
        60_000_000,
    );
    let jup = em.file(wc, "C:\\Program Files\\Java\\java_update.exe");
    let e = em.event(
        wc,
        jucheck,
        OpType::Write,
        jup,
        EntityKind::File,
        at(base, d, 8.2 * h + 40.0),
        60_000_000,
    );
    record(truth, "d2", e);

    // d3: info_stealer ramification across hosts (paper Query 3, verbatim
    // topology: /bin/cp on host A writes the script under the web root,
    // apache serves it, wget on host B fetches and writes it).
    let a = AgentId(hosts::HOST_A);
    let b = AgentId(hosts::HOST_B);
    let cp = em.process_as(a, "/bin/cp", 6001, "root", true);
    let stealer_a = em.file(a, "/var/www/html/info_stealer.sh");
    let e = em.event(
        a,
        cp,
        OpType::Write,
        stealer_a,
        EntityKind::File,
        at(base, d, 12.0 * h),
        9_000,
    );
    record(truth, "d3", e);
    let apache = em.process_as(a, "apache2", 6002, "www-data", true);
    let e = em.event(
        a,
        apache,
        OpType::Read,
        stealer_a,
        EntityKind::File,
        at(base, d, 12.0 * h + 60.0),
        9_000,
    );
    record(truth, "d3", e);
    let wget = em.process_as(b, "wget", 6101, "dev", true);
    let e = em.event(
        a,
        apache,
        OpType::Connect,
        wget,
        EntityKind::Process,
        at(base, d, 12.0 * h + 65.0),
        9_000,
    );
    record(truth, "d3", e);
    let stealer_b = em.file(b, "/tmp/info_stealer.sh");
    let e = em.event(
        b,
        wget,
        OpType::Write,
        stealer_b,
        EntityKind::File,
        at(base, d, 12.0 * h + 70.0),
        9_000,
    );
    record(truth, "d3", e);
}

/// Real-world malware behaviours v1–v5 (paper Table 4), scripted from the
/// behaviour families: Sysbot (C2 + task persistence), Hooker (DLL hook +
/// keylog exfil), Autorun (removable-media self-replication).
pub fn malware(em: &mut Emitter<'_>, base: Timestamp, truth: &mut GroundTruth) {
    let m1 = AgentId(hosts::MAL1);
    let m2 = AgentId(hosts::MAL2);
    let d = ATTACK_DAY;
    let h = 3600.0;

    fn sysbot(
        em: &mut Emitter<'_>,
        base: Timestamp,
        truth: &mut GroundTruth,
        agent: AgentId,
        label: &str,
        base_pid: i64,
        t0: f64,
    ) {
        let d = ATTACK_DAY;
        let bot = em.process_as(agent, "sysbot.exe", base_pid, "user", false);
        let job = em.file(agent, "C:\\Windows\\Tasks\\sysbot.job");
        let e = em.event(
            agent,
            bot,
            OpType::Write,
            job,
            EntityKind::File,
            at(base, d, t0),
            512,
        );
        record(truth, label, e);
        let c2 = em.conn(agent, SYSBOT_C2, 6667);
        let e = em.event(
            agent,
            bot,
            OpType::Connect,
            c2,
            EntityKind::NetConn,
            at(base, d, t0 + 10.0),
            0,
        );
        record(truth, label, e);
        for i in 0..30i64 {
            em.event(
                agent,
                bot,
                OpType::Write,
                c2,
                EntityKind::NetConn,
                at(base, d, t0 + 30.0 + i as f64 * 60.0),
                600,
            );
        }
        let cmd = em.process_as(agent, "cmd.exe", base_pid + 1, "user", true);
        let e = em.event(
            agent,
            bot,
            OpType::Start,
            cmd,
            EntityKind::Process,
            at(base, d, t0 + 120.0),
            0,
        );
        record(truth, label, e);
    }
    fn hooker(
        em: &mut Emitter<'_>,
        base: Timestamp,
        truth: &mut GroundTruth,
        agent: AgentId,
        label: &str,
        base_pid: i64,
        t0: f64,
    ) {
        let d = ATTACK_DAY;
        let hk = em.process_as(agent, "hooker.exe", base_pid, "user", false);
        let dll = em.file(agent, "C:\\Windows\\System32\\hook.dll");
        let e = em.event(
            agent,
            hk,
            OpType::Write,
            dll,
            EntityKind::File,
            at(base, d, t0),
            80_000,
        );
        record(truth, label, e);
        let e = em.event(
            agent,
            hk,
            OpType::Execute,
            dll,
            EntityKind::File,
            at(base, d, t0 + 5.0),
            0,
        );
        record(truth, label, e);
        let klog = em.file(agent, "C:\\Users\\user\\AppData\\klog.txt");
        for i in 0..20i64 {
            em.event(
                agent,
                hk,
                OpType::Write,
                klog,
                EntityKind::File,
                at(base, d, t0 + 60.0 + i as f64 * 30.0),
                2_000,
            );
        }
        let c2 = em.conn(agent, HOOKER_C2, 80);
        let e = em.event(
            agent,
            hk,
            OpType::Write,
            c2,
            EntityKind::NetConn,
            at(base, d, t0 + 700.0),
            40_000,
        );
        record(truth, label, e);
    }

    // v1: Trojan.Sysbot on host 6.
    sysbot(em, base, truth, m1, "v1", 7001, 9.0 * h);
    // v2: Trojan.Hooker on host 6.
    hooker(em, base, truth, m1, "v2", 7101, 10.0 * h);
    // v3: Virus.Autorun on host 7.
    {
        let services = em.process_as(m2, "services.exe", 7201, "SYSTEM", true);
        let vir = em.process_as(m2, "autorun_v.exe", 7202, "user", false);
        let e = em.event(
            m2,
            services,
            OpType::Start,
            vir,
            EntityKind::Process,
            at(base, d, 9.5 * h),
            0,
        );
        record(truth, "v3", e);
        let inf = em.file(m2, "E:\\autorun.inf");
        let e = em.event(
            m2,
            vir,
            OpType::Write,
            inf,
            EntityKind::File,
            at(base, d, 9.5 * h + 5.0),
            128,
        );
        record(truth, "v3", e);
        let self_copy = em.file(m2, "E:\\autorun_v.exe");
        let e = em.event(
            m2,
            vir,
            OpType::Write,
            self_copy,
            EntityKind::File,
            at(base, d, 9.5 * h + 8.0),
            450_000,
        );
        record(truth, "v3", e);
        // Replicate into the Windows directory as well.
        let sys_copy = em.file(m2, "C:\\Windows\\autorun_v.exe");
        em.event(
            m2,
            vir,
            OpType::Write,
            sys_copy,
            EntityKind::File,
            at(base, d, 9.5 * h + 12.0),
            450_000,
        );
    }
    // v4: Virus.Sysbot variant on host 7.
    sysbot(em, base, truth, m2, "v4", 7301, 11.0 * h);
    // v5: Trojan.Hooker variant on host 7.
    hooker(em, base, truth, m2, "v5", 7401, 12.0 * h);
}

/// Abnormal system behaviours s1–s6.
pub fn abnormal(em: &mut Emitter<'_>, base: Timestamp, truth: &mut GroundTruth) {
    let ab = AgentId(hosts::ABN);
    let d = ATTACK_DAY;
    let h = 3600.0;

    // s1: command-history probing (paper Query 2's behaviour).
    let sshd = em.process_as(ab, "sshd", 8001, "root", true);
    let snoopy = em.process_as(ab, "snoopy", 8002, "intruder", false);
    let e = em.event(
        ab,
        sshd,
        OpType::Start,
        snoopy,
        EntityKind::Process,
        at(base, d, 9.0 * h),
        0,
    );
    record(truth, "s1", e);
    let hist = em.file(ab, "/home/admin/.bash_history");
    let vim = em.file(ab, "/home/admin/.viminfo");
    let e = em.event(
        ab,
        snoopy,
        OpType::Read,
        hist,
        EntityKind::File,
        at(base, d, 9.0 * h + 20.0),
        4_096,
    );
    record(truth, "s1", e);
    let e = em.event(
        ab,
        snoopy,
        OpType::Read,
        vim,
        EntityKind::File,
        at(base, d, 9.0 * h + 25.0),
        2_048,
    );
    record(truth, "s1", e);

    // s2: suspicious web service — apache spawns a shell that reads shadow.
    let apache = em.process_as(ab, "apache2", 8003, "www-data", true);
    let sh = em.process_as(ab, "/bin/sh", 8004, "www-data", true);
    let e = em.event(
        ab,
        apache,
        OpType::Start,
        sh,
        EntityKind::Process,
        at(base, d, 10.0 * h),
        0,
    );
    record(truth, "s2", e);
    let shadow = em.file(ab, "/etc/shadow");
    let e = em.event(
        ab,
        sh,
        OpType::Read,
        shadow,
        EntityKind::File,
        at(base, d, 10.0 * h + 5.0),
        2_048,
    );
    record(truth, "s2", e);

    // s3: frequent network access — 150 connects to one destination.
    let beacon = em.process_as(ab, "beacon.sh", 8005, "intruder", false);
    for i in 0..150i64 {
        let c = em.conn(ab, ABN_DST, 443);
        let e = em.event(
            ab,
            beacon,
            OpType::Connect,
            c,
            EntityKind::NetConn,
            at(base, d, 11.0 * h + i as f64 * 20.0),
            0,
        );
        if i == 0 {
            record(truth, "s3", e);
        }
    }

    // s4: erasing traces from system files.
    let cleaner = em.process_as(ab, "cleaner", 8006, "intruder", false);
    for (i, log) in ["/var/log/auth.log", "/var/log/wtmp", "/var/log/lastlog"]
        .iter()
        .enumerate()
    {
        let f = em.file(ab, log);
        let e = em.event(
            ab,
            cleaner,
            OpType::Delete,
            f,
            EntityKind::File,
            at(base, d, 12.0 * h + i as f64 * 5.0),
            0,
        );
        record(truth, "s4", e);
    }

    // s5: network access spike — steady 1 kB beacons, then an 80 MB burst.
    let exfil = em.process_as(ab, "exfil.sh", 8007, "intruder", false);
    let spike_conn = em.conn(ab, SPIKE_DST, 443);
    for i in 0..120i64 {
        em.event(
            ab,
            exfil,
            OpType::Write,
            spike_conn,
            EntityKind::NetConn,
            at(base, d, 13.0 * h + i as f64 * 10.0),
            1_000,
        );
    }
    for i in 0..3i64 {
        let e = em.event(
            ab,
            exfil,
            OpType::Write,
            spike_conn,
            EntityKind::NetConn,
            at(base, d, 13.0 * h + 1500.0 + i as f64 * 10.0),
            80_000_000,
        );
        record(truth, "s5", e);
    }

    // s6: abnormal file access — a quiet baseline (one read per minute),
    // then 80 distinct sensitive files scraped in under ten seconds.
    let scraper = em.process_as(ab, "scraper", 8008, "intruder", false);
    for i in 0..30i64 {
        let f = em.file(ab, &format!("/home/admin/notes{i}.txt"));
        em.event(
            ab,
            scraper,
            OpType::Read,
            f,
            EntityKind::File,
            at(base, d, 14.4 * h + i as f64 * 60.0),
            2_000,
        );
    }
    for i in 0..80i64 {
        let f = em.file(ab, &format!("/home/admin/secret{i}.doc"));
        let e = em.event(
            ab,
            scraper,
            OpType::Read,
            f,
            EntityKind::File,
            at(base, d, 15.0 * h + i as f64 * 0.12),
            10_000,
        );
        if i == 0 {
            record(truth, "s6", e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::Ids;
    use aiql_model::Dataset;

    fn build() -> (Dataset, GroundTruth) {
        let mut data = Dataset::new();
        let mut ids = Ids::new();
        let mut truth = GroundTruth::new();
        let base = Timestamp::from_ymd(2017, 1, 1).unwrap();
        let mut em = Emitter::new(&mut data, &mut ids);
        emit_all(&mut em, base, &mut truth);
        (data, truth)
    }

    #[test]
    fn all_scenarios_recorded() {
        let (_, truth) = build();
        for label in [
            "c1", "c2", "c3", "c4", "c5", "a1", "a2", "a3", "a4", "a5", "d1", "d2", "d3", "v1",
            "v2", "v3", "v4", "v5", "s1", "s2", "s3", "s4", "s5", "s6",
        ] {
            assert!(truth.contains_key(label), "missing truth for {label}");
            assert!(!truth[label].is_empty());
        }
    }

    #[test]
    fn scenario_events_are_on_the_attack_day() {
        let (data, _) = build();
        let base = Timestamp::from_ymd(2017, 1, 1).unwrap();
        for e in &data.events {
            assert_eq!(e.start.day_index(), base.day_index() + ATTACK_DAY);
        }
    }

    #[test]
    fn exfiltration_chain_is_ordered() {
        let (data, truth) = build();
        let c5 = &truth["c5"];
        let times: Vec<i64> = c5
            .iter()
            .map(|id| data.events.iter().find(|e| e.id == *id).unwrap().start.0)
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "c5 key events in temporal order");
    }

    #[test]
    fn cross_host_connect_present_for_d3() {
        let (data, truth) = build();
        let d3 = &truth["d3"];
        let idx = data.entity_index();
        let connect = d3
            .iter()
            .map(|id| data.events.iter().find(|e| e.id == *id).unwrap())
            .find(|e| e.op == OpType::Connect)
            .expect("d3 records a connect");
        // Subject on host A, object process on host B.
        assert_eq!(connect.agent.0, hosts::HOST_A);
        assert_eq!(idx[&connect.object].agent.0, hosts::HOST_B);
        assert_eq!(connect.object_kind, EntityKind::Process);
    }

    #[test]
    fn spike_amounts_dwarf_beacons() {
        let (data, truth) = build();
        let spike_ids = &truth["s5"];
        for id in spike_ids {
            let e = data.events.iter().find(|e| e.id == *id).unwrap();
            assert!(e.amount >= 80_000_000);
        }
    }
}
