//! Streaming scenario: turns a generated dataset into the shipment stream a
//! live deployment would see.
//!
//! The batch simulator emits a finished, server-time-ordered [`Dataset`].
//! Real agents instead ship events continuously, stamped with their own
//! drifting clocks, and shipments arrive interleaved and slightly out of
//! order. This module replays a dataset through that lens:
//!
//! 1. every agent gets a deterministic clock skew (its stamps read
//!    `server_time - skew`);
//! 2. arrival order is the true event order perturbed by a bounded local
//!    shuffle (`jitter_events` controls how far an event may arrive early);
//! 3. the perturbed stream is cut into fixed-size [`StreamBatch`]es, each
//!    carrying the entities first referenced in it.
//!
//! The per-agent skews are returned as ground truth so an ingestion
//! pipeline can feed its time synchronizer exact clock samples and the
//! corrected stream can be compared 1:1 against the original dataset (see
//! `tests/proptest_ingest.rs` at the workspace root).

use aiql_model::{AgentId, Dataset, Duration, Entity, EntityId, Event};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Streaming replay options.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Events per shipment.
    pub batch_events: usize,
    /// Maximum per-agent clock skew, in nanoseconds (each agent draws a
    /// fixed skew uniformly from `[-max_skew_ns, max_skew_ns]`).
    pub max_skew_ns: i64,
    /// Out-of-orderness: how many positions an event may arrive ahead of
    /// its true order (0 = in-order delivery).
    pub jitter_events: usize,
    /// RNG seed (identical seeds replay identical streams).
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            batch_events: 256,
            max_skew_ns: 2_000_000_000, // ±2 s of drift
            jitter_events: 32,
            seed: 42,
        }
    }
}

/// Ground truth for one agent's clock: `server_time - agent_time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentSkew {
    pub agent: AgentId,
    /// The offset to *add* to the agent's stamps to recover server time.
    pub offset_ns: i64,
}

/// One shipment: entities first referenced here plus agent-stamped events.
#[derive(Debug, Clone, Default)]
pub struct StreamBatch {
    pub entities: Vec<Entity>,
    pub events: Vec<Event>,
}

/// Replays `data` as an out-of-order, skewed shipment stream.
///
/// Returns the batches in arrival order plus the ground-truth skews. Every
/// event and entity of `data` appears in exactly one batch; event stamps
/// are shifted to each agent's local clock (subtract the skew), so applying
/// the offsets on ingestion reconstructs the original server-time stream.
pub fn stream(data: &Dataset, cfg: &StreamConfig) -> (Vec<StreamBatch>, Vec<AgentSkew>) {
    assert!(cfg.batch_events > 0, "batch_events must be positive");
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x057A_EA11);

    // Fixed skew per agent, deterministic in agent order.
    let mut skews: Vec<AgentSkew> = Vec::new();
    for agent in data.agents() {
        let offset_ns = if cfg.max_skew_ns == 0 {
            0
        } else {
            rng.gen_range(-cfg.max_skew_ns..cfg.max_skew_ns + 1)
        };
        skews.push(AgentSkew { agent, offset_ns });
    }
    let skew_of: HashMap<AgentId, i64> = skews.iter().map(|s| (s.agent, s.offset_ns)).collect();

    // True server-time order, then a local shuffle: each position swaps
    // with a peer up to `jitter_events` ahead. Earliness is bounded by the
    // window; lateness is not (an event can keep being pushed forward by
    // later swaps), matching real delivery where a straggler can be
    // arbitrarily late but nothing arrives before it happened.
    let mut order: Vec<usize> = (0..data.events.len()).collect();
    order.sort_by_key(|&i| {
        let e = &data.events[i];
        (e.start, e.seq, e.id)
    });
    if cfg.jitter_events > 0 {
        for i in 0..order.len() {
            let hi = (i + cfg.jitter_events + 1).min(order.len());
            let j = rng.gen_range(i..hi);
            order.swap(i, j);
        }
    }

    // Entities ship with the batch that first references them; entities
    // never referenced by an event ride along in the first batch.
    let entity_by_id: HashMap<EntityId, &Entity> =
        data.entities.iter().map(|e| (e.id, e)).collect();
    let referenced: HashSet<EntityId> = data
        .events
        .iter()
        .flat_map(|e| [e.subject, e.object])
        .collect();
    let mut shipped: HashSet<EntityId> = HashSet::new();

    let mut batches = Vec::new();
    for (b, chunk) in order.chunks(cfg.batch_events).enumerate() {
        let mut batch = StreamBatch::default();
        if b == 0 {
            for e in &data.entities {
                if !referenced.contains(&e.id) && shipped.insert(e.id) {
                    batch.entities.push(e.clone());
                }
            }
        }
        for &i in chunk {
            let ev = &data.events[i];
            for id in [ev.subject, ev.object] {
                if let Some(e) = entity_by_id.get(&id) {
                    if shipped.insert(id) {
                        batch.entities.push((*e).clone());
                    }
                }
            }
            // Re-stamp with the agent's local clock.
            let skew = Duration(skew_of.get(&ev.agent).copied().unwrap_or(0));
            let mut local = ev.clone();
            local.start = local.start.saturating_sub(skew);
            local.end = local.end.saturating_sub(skew);
            batch.events.push(local);
        }
        batches.push(batch);
    }
    // An event-less dataset still ships its entities (the chunk loop above
    // never ran, so nothing carried them).
    if batches.is_empty() && !data.entities.is_empty() {
        batches.push(StreamBatch {
            entities: data.entities.clone(),
            events: Vec::new(),
        });
    }
    (batches, skews)
}

/// Generates a fresh micro-enterprise and streams it — the one-call entry
/// point for live-ingestion demos and benchmarks.
pub fn scenario(
    hosts: u32,
    days: u32,
    events_per_host_per_day: u32,
    cfg: &StreamConfig,
) -> (Dataset, Vec<StreamBatch>, Vec<AgentSkew>) {
    let data = crate::EnterpriseSim::builder()
        .hosts(hosts)
        .days(days)
        .seed(cfg.seed)
        .events_per_host_per_day(events_per_host_per_day)
        .attacks(hosts >= 10 && days >= 2)
        .build()
        .generate();
    let (batches, skews) = stream(&data, cfg);
    (data, batches, skews)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::Timestamp;

    fn small() -> Dataset {
        crate::EnterpriseSim::builder()
            .hosts(3)
            .days(2)
            .seed(9)
            .events_per_host_per_day(200)
            .build()
            .generate()
    }

    #[test]
    fn stream_preserves_every_event_and_entity_once() {
        let data = small();
        let (batches, _) = stream(&data, &StreamConfig::default());
        let mut event_ids: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.events.iter().map(|e| e.id.0))
            .collect();
        event_ids.sort_unstable();
        let mut want: Vec<u64> = data.events.iter().map(|e| e.id.0).collect();
        want.sort_unstable();
        assert_eq!(event_ids, want);

        let mut entity_ids: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.entities.iter().map(|e| e.id.0))
            .collect();
        entity_ids.sort_unstable();
        let mut want: Vec<u64> = data.entities.iter().map(|e| e.id.0).collect();
        want.sort_unstable();
        assert_eq!(entity_ids, want, "each entity ships exactly once");
    }

    #[test]
    fn skew_correction_recovers_server_time() {
        let data = small();
        let cfg = StreamConfig {
            jitter_events: 0,
            ..StreamConfig::default()
        };
        let (batches, skews) = stream(&data, &cfg);
        let skew_of: std::collections::HashMap<_, _> =
            skews.iter().map(|s| (s.agent, s.offset_ns)).collect();
        let original: std::collections::HashMap<u64, Timestamp> =
            data.events.iter().map(|e| (e.id.0, e.start)).collect();
        assert!(skews.iter().any(|s| s.offset_ns != 0), "some agent drifts");
        for b in &batches {
            for e in &b.events {
                let corrected = e.start.saturating_add(Duration(skew_of[&e.agent]));
                assert_eq!(corrected, original[&e.id.0]);
            }
        }
    }

    #[test]
    fn jitter_bounds_out_of_orderness() {
        let data = small();
        let cfg = StreamConfig {
            jitter_events: 16,
            max_skew_ns: 0,
            batch_events: 1_000_000, // one giant batch
            ..StreamConfig::default()
        };
        let (batches, _) = stream(&data, &cfg);
        let arrived: Vec<&Event> = batches.iter().flat_map(|b| &b.events).collect();
        let inversions = arrived
            .windows(2)
            .filter(|w| w[0].start > w[1].start)
            .count();
        assert!(inversions > 0, "jitter produces out-of-order arrivals");
    }

    #[test]
    fn event_less_dataset_still_ships_entities() {
        let mut data = Dataset::new();
        data.add_entity(aiql_model::Entity::process(
            1.into(),
            aiql_model::AgentId(0),
            "p",
            1,
        ));
        data.add_entity(aiql_model::Entity::file(
            2.into(),
            aiql_model::AgentId(0),
            "/f",
        ));
        let (batches, _) = stream(&data, &StreamConfig::default());
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].entities.len(), 2);
        assert!(batches[0].events.is_empty());

        // Fully empty datasets produce no batches at all.
        let (batches, _) = stream(&Dataset::new(), &StreamConfig::default());
        assert!(batches.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = small();
        let cfg = StreamConfig::default();
        let (a, sa) = stream(&data, &cfg);
        let (b, sb) = stream(&data, &cfg);
        assert_eq!(sa, sb);
        let ids = |bs: &[StreamBatch]| -> Vec<u64> {
            bs.iter()
                .flat_map(|x| x.events.iter().map(|e| e.id.0))
                .collect()
        };
        assert_eq!(ids(&a), ids(&b));
        let (c, _) = stream(&data, &StreamConfig { seed: 7, ..cfg });
        assert_ne!(ids(&a), ids(&c));
    }

    #[test]
    fn batch_sizes_respect_config() {
        let data = small();
        let cfg = StreamConfig {
            batch_events: 100,
            ..StreamConfig::default()
        };
        let (batches, _) = stream(&data, &cfg);
        assert_eq!(batches.len(), data.events.len().div_ceil(100));
        assert!(batches[..batches.len() - 1]
            .iter()
            .all(|b| b.events.len() == 100));
    }
}
