//! ID allocation and a tiny deterministic workload-building toolkit shared
//! by the background generator and the attack scenarios.

use aiql_model::{
    AgentId, Dataset, Entity, EntityId, EntityKind, Event, EventId, OpType, Timestamp,
};
use std::collections::HashMap;

/// Monotone allocators for entity/event IDs, unique across the simulation.
#[derive(Debug, Default)]
pub struct Ids {
    next_entity: u64,
    next_event: u64,
    next_seq: HashMap<u32, u64>,
}

impl Ids {
    /// A fresh allocator.
    pub fn new() -> Ids {
        Ids {
            next_entity: 1,
            next_event: 1,
            next_seq: HashMap::new(),
        }
    }

    /// Allocates an entity ID.
    pub fn entity(&mut self) -> EntityId {
        let id = self.next_entity;
        self.next_entity += 1;
        EntityId(id)
    }

    /// Allocates an event ID.
    pub fn event(&mut self) -> EventId {
        let id = self.next_event;
        self.next_event += 1;
        EventId(id)
    }

    /// Next per-agent sequence number (tie-breaker for equal timestamps).
    pub fn seq(&mut self, agent: AgentId) -> u64 {
        let s = self.next_seq.entry(agent.0).or_insert(0);
        *s += 1;
        *s
    }
}

/// A convenience wrapper for emitting entities/events into a dataset.
pub struct Emitter<'a> {
    pub data: &'a mut Dataset,
    pub ids: &'a mut Ids,
}

impl<'a> Emitter<'a> {
    /// Creates an emitter over a dataset and allocator.
    pub fn new(data: &'a mut Dataset, ids: &'a mut Ids) -> Emitter<'a> {
        Emitter { data, ids }
    }

    /// Adds a process entity.
    pub fn process(&mut self, agent: AgentId, exe: &str, pid: i64) -> EntityId {
        let id = self.ids.entity();
        self.data.add_entity(
            Entity::process(id, agent, exe, pid)
                .with_attr("user", "SYSTEM")
                .with_attr("cmd", exe.to_string())
                .with_attr("signature", "unsigned"),
        );
        id
    }

    /// Adds a process entity with a user and signature.
    pub fn process_as(
        &mut self,
        agent: AgentId,
        exe: &str,
        pid: i64,
        user: &str,
        signed: bool,
    ) -> EntityId {
        let id = self.ids.entity();
        self.data.add_entity(
            Entity::process(id, agent, exe, pid)
                .with_attr("user", user.to_string())
                .with_attr("cmd", exe.to_string())
                .with_attr("signature", if signed { "valid" } else { "unsigned" }),
        );
        id
    }

    /// Adds a file entity.
    pub fn file(&mut self, agent: AgentId, name: &str) -> EntityId {
        let id = self.ids.entity();
        self.data.add_entity(
            Entity::file(id, agent, name)
                .with_attr("owner", "root")
                .with_attr("group", "root")
                .with_attr("vol_id", 1i64)
                .with_attr("data_id", id.0 as i64),
        );
        id
    }

    /// Adds a network-connection entity.
    pub fn conn(&mut self, agent: AgentId, dst_ip: &str, dst_port: i64) -> EntityId {
        let id = self.ids.entity();
        self.data.add_entity(Entity::netconn(
            id,
            agent,
            format!("10.0.0.{}", agent.0 + 10),
            40_000 + (id.0 % 20_000) as i64,
            dst_ip,
            dst_port,
        ));
        id
    }

    /// Emits an event, returning its ID.
    #[allow(clippy::too_many_arguments)] // mirrors Event::new's field order
    pub fn event(
        &mut self,
        agent: AgentId,
        subject: EntityId,
        op: OpType,
        object: EntityId,
        object_kind: EntityKind,
        t: Timestamp,
        amount: i64,
    ) -> EventId {
        let id = self.ids.event();
        let seq = self.ids.seq(agent);
        self.data.add_event(
            Event::new(id, agent, subject, op, object, object_kind, t)
                .with_seq(seq)
                .with_amount(amount),
        );
        id
    }
}

/// Timestamp helper: `base date + day + seconds`.
pub fn at(day0: Timestamp, day: i64, secs: f64) -> Timestamp {
    Timestamp(day0.0 + day * 86_400 * 1_000_000_000 + (secs * 1e9) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut ids = Ids::new();
        let a = ids.entity();
        let b = ids.entity();
        assert!(b > a);
        let e1 = ids.event();
        let e2 = ids.event();
        assert!(e2 > e1);
        assert_eq!(ids.seq(AgentId(1)), 1);
        assert_eq!(ids.seq(AgentId(1)), 2);
        assert_eq!(ids.seq(AgentId(2)), 1);
    }

    #[test]
    fn emitter_builds_entities_and_events() {
        let mut data = Dataset::new();
        let mut ids = Ids::new();
        let mut em = Emitter::new(&mut data, &mut ids);
        let a = AgentId(1);
        let p = em.process_as(a, "bash", 10, "alice", true);
        let f = em.file(a, "/tmp/x");
        let t = Timestamp::from_ymd(2017, 1, 1).unwrap();
        em.event(a, p, OpType::Write, f, EntityKind::File, t, 42);
        assert_eq!(data.entities.len(), 2);
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].amount, 42);
        assert_eq!(
            data.entity(p).unwrap().attr("user"),
            aiql_model::Value::str("alice")
        );
    }

    #[test]
    fn at_computes_offsets() {
        let d0 = Timestamp::from_ymd(2017, 1, 1).unwrap();
        let t = at(d0, 1, 3600.0);
        assert_eq!(t.ymd(), (2017, 1, 2));
        assert_eq!(t.hms(), (1, 0, 0));
    }
}
