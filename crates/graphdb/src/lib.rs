//! A from-scratch property-graph database, standing in for Neo4j in the
//! AIQL paper's evaluation.
//!
//! The paper configures Neo4j by "importing system entities as nodes and
//! system events as relationships" and observes that graph databases "lack
//! efficient support for joins": path traversal is fast along connected
//! patterns, but event patterns related only by attribute values or temporal
//! order force binding-expansion over cross products. This crate reproduces
//! that execution model honestly:
//!
//! - [`GraphDb`] stores labelled nodes/edges with property maps and
//!   adjacency lists in both directions,
//! - node lookups can use Neo4j-style `(label, property)` indexes,
//! - [`pattern::PatternQuery`] is a Cypher-`MATCH`-like pattern: a list of
//!   `(node)-[edge]->(node)` triples with property predicates, shared
//!   variables, cross-variable property comparisons, and temporal
//!   constraints between edge variables,
//! - the [`pattern::PatternQuery::run`] evaluator performs depth-first binding
//!   expansion *in pattern order* — connected steps traverse adjacency,
//!   disconnected steps fall back to scans/cartesian expansion, exactly the
//!   weakness the paper measures.
//!
//! # Examples
//!
//! ```
//! use aiql_graphdb::{GraphDb, Value};
//! use aiql_graphdb::pattern::{PatternQuery, Triple, NodePat, EdgePat, PropPred};
//!
//! let mut g = GraphDb::new();
//! let bash = g.add_node("proc", vec![("exe_name", Value::str("bash"))]);
//! let hist = g.add_node("file", vec![("name", Value::str(".bash_history"))]);
//! g.add_edge(bash, hist, "read", 100, vec![]);
//!
//! let q = PatternQuery::new(vec![Triple {
//!     src: NodePat::with_var("p", "proc", vec![]),
//!     edge: EdgePat::new("e", &["read"], vec![]),
//!     dst: NodePat::with_var("f", "file", vec![PropPred::like("name", "%history")]),
//! }]);
//! let rows = q.run(&g, None).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod pattern;

pub use aiql_model::Value;
pub use pattern::{MatchStats, PatternQuery};

use std::collections::{BTreeMap, HashMap};

/// Node identifier (position in the node arena).
pub type NodeId = u32;
/// Edge identifier (position in the edge arena).
pub type EdgeId = u32;

/// A labelled node with properties.
#[derive(Debug, Clone)]
pub struct Node {
    pub label: String,
    pub props: BTreeMap<String, Value>,
}

/// A labelled, timestamped edge with properties.
#[derive(Debug, Clone)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub label: String,
    /// Event time (nanoseconds) — dedicated field because temporal
    /// relationships between edges are first-class in attack queries.
    pub time: i64,
    pub props: BTreeMap<String, Value>,
}

/// An in-memory property graph with adjacency lists and optional
/// `(label, property)` node indexes.
#[derive(Debug, Default)]
pub struct GraphDb {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    /// (label, property) → value → node ids.
    node_indexes: HashMap<(String, String), BTreeMap<Value, Vec<NodeId>>>,
}

impl GraphDb {
    /// Creates an empty graph.
    pub fn new() -> GraphDb {
        GraphDb::default()
    }

    /// Adds a node and returns its ID.
    pub fn add_node(&mut self, label: &str, props: Vec<(&str, Value)>) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let props: BTreeMap<String, Value> =
            props.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        for ((ilabel, prop), index) in self.node_indexes.iter_mut() {
            if ilabel == label {
                if let Some(v) = props.get(prop) {
                    index.entry(v.clone()).or_default().push(id);
                }
            }
        }
        self.nodes.push(Node {
            label: label.to_string(),
            props,
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds an edge and returns its ID.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a valid node ID; edges are created
    /// from nodes the caller just added, so this is a programming error.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: &str,
        time: i64,
        props: Vec<(&str, Value)>,
    ) -> EdgeId {
        assert!((src as usize) < self.nodes.len(), "bad src node");
        assert!((dst as usize) < self.nodes.len(), "bad dst node");
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge {
            src,
            dst,
            label: label.to_string(),
            time,
            props: props.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        self.out_adj[src as usize].push(id);
        self.in_adj[dst as usize].push(id);
        id
    }

    /// Creates a `(label, property)` node index, back-filling existing nodes
    /// (Neo4j's label/property index).
    pub fn create_node_index(&mut self, label: &str, prop: &str) {
        let key = (label.to_string(), prop.to_string());
        if self.node_indexes.contains_key(&key) {
            return;
        }
        let mut index: BTreeMap<Value, Vec<NodeId>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.label == label {
                if let Some(v) = n.props.get(prop) {
                    index.entry(v.clone()).or_default().push(i as NodeId);
                }
            }
        }
        self.node_indexes.insert(key, index);
    }

    /// Node by ID.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Edge by ID.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id as usize]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_adj[n as usize]
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_adj[n as usize]
    }

    /// Node IDs matching `(label, prop) = value` via an index, if one exists.
    pub fn index_lookup(&self, label: &str, prop: &str, value: &Value) -> Option<&[NodeId]> {
        self.node_indexes
            .get(&(label.to_string(), prop.to_string()))
            .map(|idx| idx.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Whether a `(label, prop)` index exists.
    pub fn has_index(&self, label: &str, prop: &str) -> bool {
        self.node_indexes
            .contains_key(&(label.to_string(), prop.to_string()))
    }

    /// Iterates all node IDs with `label`.
    pub fn nodes_with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.label == label)
            .map(|(i, _)| i as NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GraphDb {
        let mut g = GraphDb::new();
        let a = g.add_node("proc", vec![("exe_name", Value::str("bash"))]);
        let b = g.add_node("proc", vec![("exe_name", Value::str("vim"))]);
        let f = g.add_node("file", vec![("name", Value::str("/tmp/x"))]);
        g.add_edge(a, b, "start", 10, vec![("agentid", Value::Int(1))]);
        g.add_edge(b, f, "write", 20, vec![]);
        g
    }

    #[test]
    fn adjacency_maintained() {
        let g = tiny();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_edges(0), &[0]);
        assert_eq!(g.in_edges(1), &[0]);
        assert_eq!(g.out_edges(1), &[1]);
        assert_eq!(g.in_edges(2), &[1]);
        assert_eq!(g.edge(0).label, "start");
        assert_eq!(g.edge(1).time, 20);
    }

    #[test]
    fn index_backfill_and_incremental() {
        let mut g = tiny();
        g.create_node_index("proc", "exe_name");
        assert!(g.has_index("proc", "exe_name"));
        assert_eq!(
            g.index_lookup("proc", "exe_name", &Value::str("bash")),
            Some(&[0u32][..])
        );
        // New nodes are indexed on insert.
        let c = g.add_node("proc", vec![("exe_name", Value::str("bash"))]);
        assert_eq!(
            g.index_lookup("proc", "exe_name", &Value::str("bash")),
            Some(&[0u32, c][..])
        );
        // Missing value → empty slice, missing index → None.
        assert_eq!(
            g.index_lookup("proc", "exe_name", &Value::str("nope")),
            Some(&[][..])
        );
        assert_eq!(g.index_lookup("file", "name", &Value::str("/tmp/x")), None);
        // Idempotent.
        g.create_node_index("proc", "exe_name");
    }

    #[test]
    fn label_scan() {
        let g = tiny();
        let procs: Vec<NodeId> = g.nodes_with_label("proc").collect();
        assert_eq!(procs, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "bad src node")]
    fn bad_edge_panics() {
        let mut g = GraphDb::new();
        g.add_edge(5, 6, "x", 0, vec![]);
    }
}
