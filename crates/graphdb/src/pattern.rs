//! Cypher-`MATCH`-style pattern queries evaluated by depth-first binding
//! expansion.
//!
//! A [`PatternQuery`] is an ordered list of `(src)-[edge]->(dst)` triples.
//! The matcher walks the triples in order keeping a binding environment:
//!
//! - if either endpoint variable is already bound, the step expands along
//!   the adjacency lists of the bound node (fast, Neo4j's strength);
//! - if neither endpoint is bound, the step enumerates candidate source
//!   nodes — via a `(label, property)` index when an equality predicate
//!   allows, otherwise a label scan — and the step multiplies the binding
//!   set (the cartesian blow-up the paper attributes to graph databases on
//!   patterns that share no entity).
//!
//! Temporal constraints between edge variables and cross-variable property
//! comparisons are applied as soon as both sides are bound.

use crate::{EdgeId, GraphDb, NodeId, Value};
use std::collections::BTreeMap;
use std::time::Instant;

/// Comparison operators for property predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum POp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl POp {
    fn eval(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = a.loose_cmp(b);
        match self {
            POp::Eq => ord == Equal,
            POp::Ne => ord != Equal,
            POp::Lt => ord == Less,
            POp::Le => ord != Greater,
            POp::Gt => ord == Greater,
            POp::Ge => ord != Less,
        }
    }
}

/// A predicate on one property of a node or edge.
#[derive(Debug, Clone)]
pub enum PropPred {
    /// `prop op literal`.
    Cmp(String, POp, Value),
    /// `prop LIKE pattern` (with `%` wildcards).
    Like(String, String),
    /// Negated LIKE.
    NotLike(String, String),
    /// `prop IN (values)`.
    In(String, Vec<Value>),
    /// Disjunction of predicates on the same element.
    Or(Vec<PropPred>),
    /// Conjunction of predicates on the same element.
    And(Vec<PropPred>),
    /// Negation.
    Not(Box<PropPred>),
}

impl PropPred {
    /// `prop = value` shorthand.
    pub fn eq(prop: &str, value: impl Into<Value>) -> PropPred {
        PropPred::Cmp(prop.to_string(), POp::Eq, value.into())
    }

    /// `prop LIKE pattern` shorthand.
    pub fn like(prop: &str, pattern: &str) -> PropPred {
        PropPred::Like(prop.to_string(), pattern.to_string())
    }

    fn matches(&self, props: &BTreeMap<String, Value>) -> bool {
        match self {
            PropPred::Cmp(p, op, lit) => props
                .get(p)
                .is_some_and(|v| !v.is_null() && op.eval(v, lit)),
            PropPred::Like(p, pat) => props.get(p).is_some_and(|v| v.like(pat)),
            PropPred::NotLike(p, pat) => props.get(p).is_some_and(|v| !v.is_null() && !v.like(pat)),
            PropPred::In(p, list) => props
                .get(p)
                .is_some_and(|v| list.iter().any(|x| x.loose_eq(v))),
            PropPred::Or(ps) => ps.iter().any(|q| q.matches(props)),
            PropPred::And(ps) => ps.iter().all(|q| q.matches(props)),
            PropPred::Not(q) => !q.matches(props),
        }
    }

    /// If this predicate pins `prop = value`, returns them (index usable).
    fn as_eq(&self) -> Option<(&str, &Value)> {
        match self {
            PropPred::Cmp(p, POp::Eq, v) => Some((p.as_str(), v)),
            _ => None,
        }
    }
}

/// A node pattern: variable name, required label, property predicates.
#[derive(Debug, Clone)]
pub struct NodePat {
    pub var: String,
    pub label: String,
    pub preds: Vec<PropPred>,
}

impl NodePat {
    /// Builds a node pattern.
    pub fn with_var(var: &str, label: &str, preds: Vec<PropPred>) -> NodePat {
        NodePat {
            var: var.to_string(),
            label: label.to_string(),
            preds,
        }
    }

    fn admits(&self, g: &GraphDb, n: NodeId) -> bool {
        let node = g.node(n);
        node.label == self.label && self.preds.iter().all(|p| p.matches(&node.props))
    }
}

/// An edge pattern: variable name, admissible labels (empty = any),
/// property predicates.
#[derive(Debug, Clone)]
pub struct EdgePat {
    pub var: String,
    pub labels: Vec<String>,
    pub preds: Vec<PropPred>,
    /// Inclusive time bounds on the edge's `time` field, if constrained.
    pub time_lo: Option<i64>,
    pub time_hi: Option<i64>,
}

impl EdgePat {
    /// Builds an edge pattern admitting the given labels.
    pub fn new(var: &str, labels: &[&str], preds: Vec<PropPred>) -> EdgePat {
        EdgePat {
            var: var.to_string(),
            labels: labels.iter().map(|s| s.to_string()).collect(),
            preds,
            time_lo: None,
            time_hi: None,
        }
    }

    /// Constrains the edge time window, builder style.
    pub fn between(mut self, lo: i64, hi: i64) -> EdgePat {
        self.time_lo = Some(lo);
        self.time_hi = Some(hi);
        self
    }

    fn admits(&self, g: &GraphDb, e: EdgeId) -> bool {
        let edge = g.edge(e);
        (self.labels.is_empty() || self.labels.contains(&edge.label))
            && self.time_lo.is_none_or(|lo| edge.time >= lo)
            && self.time_hi.is_none_or(|hi| edge.time <= hi)
            && self.preds.iter().all(|p| p.matches(&edge.props))
    }
}

/// One `(src)-[edge]->(dst)` step.
#[derive(Debug, Clone)]
pub struct Triple {
    pub src: NodePat,
    pub edge: EdgePat,
    pub dst: NodePat,
}

/// Temporal order between two bound edge variables.
#[derive(Debug, Clone)]
pub struct TempConstraint {
    pub left: String,
    /// True for `left before right`, false for `left after right`.
    pub before: bool,
    pub right: String,
    /// Optional bound on the gap (nanoseconds): gap in `[lo, hi]`.
    pub gap: Option<(i64, i64)>,
    /// Symmetric (`within`) semantics: |gap| constrained, no order.
    pub within: bool,
}

/// Property comparison across two bound variables (node or edge).
#[derive(Debug, Clone)]
pub struct CrossPred {
    pub left_var: String,
    pub left_prop: String,
    pub op: POp,
    pub right_var: String,
    pub right_prop: String,
}

/// Match statistics (for the evaluation's cost accounting).
#[derive(Debug, Default, Clone, Copy)]
pub struct MatchStats {
    /// Bindings considered across all steps.
    pub expansions: u64,
    /// Result rows produced.
    pub rows: u64,
}

/// A full pattern query.
#[derive(Debug, Clone)]
pub struct PatternQuery {
    pub triples: Vec<Triple>,
    pub temporal: Vec<TempConstraint>,
    pub cross: Vec<CrossPred>,
    /// Projection: (variable, property) pairs; a property of `"id"` projects
    /// the internal node/edge ID.
    pub returns: Vec<(String, String)>,
}

/// Error type for pattern matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchError {
    /// The deadline elapsed.
    Timeout,
    /// The query references an unbound variable.
    Unbound(String),
}

impl std::fmt::Display for MatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchError::Timeout => write!(f, "pattern match exceeded its deadline"),
            MatchError::Unbound(v) => write!(f, "unbound variable: {v}"),
        }
    }
}

impl std::error::Error for MatchError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Node(NodeId),
    Edge(EdgeId),
}

impl PatternQuery {
    /// A query with the given triples and no extra constraints, returning
    /// every variable's default identity.
    pub fn new(triples: Vec<Triple>) -> PatternQuery {
        let mut returns = Vec::new();
        for t in &triples {
            returns.push((t.src.var.clone(), "id".to_string()));
            returns.push((t.dst.var.clone(), "id".to_string()));
        }
        returns.dedup();
        PatternQuery {
            triples,
            temporal: Vec::new(),
            cross: Vec::new(),
            returns,
        }
    }

    /// Runs the query, returning projected rows.
    pub fn run(
        &self,
        g: &GraphDb,
        deadline: Option<Instant>,
    ) -> Result<Vec<Vec<Value>>, MatchError> {
        self.run_stats(g, deadline).map(|(rows, _)| rows)
    }

    /// Runs the query, also returning match statistics.
    pub fn run_stats(
        &self,
        g: &GraphDb,
        deadline: Option<Instant>,
    ) -> Result<(Vec<Vec<Value>>, MatchStats), MatchError> {
        let mut stats = MatchStats::default();
        let mut out = Vec::new();
        let mut env: BTreeMap<String, Binding> = BTreeMap::new();
        self.dfs(g, 0, &mut env, &mut out, &mut stats, deadline)?;
        stats.rows = out.len() as u64;
        Ok((out, stats))
    }

    fn dfs(
        &self,
        g: &GraphDb,
        step: usize,
        env: &mut BTreeMap<String, Binding>,
        out: &mut Vec<Vec<Value>>,
        stats: &mut MatchStats,
        deadline: Option<Instant>,
    ) -> Result<(), MatchError> {
        if stats.expansions & 0xFFF == 0 {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(MatchError::Timeout);
                }
            }
        }
        if step == self.triples.len() {
            out.push(self.project(g, env)?);
            return Ok(());
        }
        let t = &self.triples[step];
        let src_bound = env.get(&t.src.var).copied();
        let dst_bound = env.get(&t.dst.var).copied();

        // Candidate edges for this step.
        let candidates: Vec<EdgeId> = match (src_bound, dst_bound) {
            (Some(Binding::Node(s)), _) => g.out_edges(s).to_vec(),
            (None, Some(Binding::Node(d))) => g.in_edges(d).to_vec(),
            (None, None) => {
                // Enumerate source nodes: index if an equality predicate has
                // one, else label scan — then their outgoing edges.
                let srcs = self.candidate_nodes(g, &t.src);
                let mut es = Vec::new();
                for s in srcs {
                    es.extend_from_slice(g.out_edges(s));
                }
                es
            }
            (Some(Binding::Edge(_)), _) | (None, Some(Binding::Edge(_))) => {
                return Err(MatchError::Unbound(format!(
                    "variable {} bound to an edge, used as a node",
                    t.src.var
                )))
            }
        };

        for e in candidates {
            stats.expansions += 1;
            let edge = g.edge(e);
            if !t.edge.admits(g, e) {
                continue;
            }
            // Endpoint checks (label + predicates + variable consistency).
            if let Some(Binding::Node(s)) = src_bound {
                if edge.src != s {
                    continue;
                }
            } else if !t.src.admits(g, edge.src) {
                continue;
            }
            if let Some(b) = dst_bound {
                if b != Binding::Node(edge.dst) {
                    continue;
                }
            } else if !t.dst.admits(g, edge.dst) {
                continue;
            }
            // Same variable for src and dst means a self-loop.
            if t.src.var == t.dst.var && edge.src != edge.dst {
                continue;
            }

            // Tentatively bind.
            let mut added = Vec::new();
            if src_bound.is_none() {
                env.insert(t.src.var.clone(), Binding::Node(edge.src));
                added.push(&t.src.var);
            }
            if dst_bound.is_none() && t.src.var != t.dst.var {
                env.insert(t.dst.var.clone(), Binding::Node(edge.dst));
                added.push(&t.dst.var);
            }
            let had_edge = env.insert(t.edge.var.clone(), Binding::Edge(e));

            if self.constraints_hold(g, env) {
                self.dfs(g, step + 1, env, out, stats, deadline)?;
            }

            // Unbind.
            match had_edge {
                Some(b) => {
                    env.insert(t.edge.var.clone(), b);
                }
                None => {
                    env.remove(&t.edge.var);
                }
            }
            for v in added {
                env.remove(v);
            }
        }
        Ok(())
    }

    fn candidate_nodes(&self, g: &GraphDb, np: &NodePat) -> Vec<NodeId> {
        for p in &np.preds {
            if let Some((prop, value)) = p.as_eq() {
                if let Some(ids) = g.index_lookup(&np.label, prop, value) {
                    return ids.to_vec();
                }
            }
        }
        g.nodes_with_label(&np.label)
            .filter(|&n| np.admits(g, n))
            .collect()
    }

    /// Checks temporal and cross-variable constraints whose variables are
    /// all bound in `env`.
    fn constraints_hold(&self, g: &GraphDb, env: &BTreeMap<String, Binding>) -> bool {
        for tc in &self.temporal {
            let (Some(Binding::Edge(l)), Some(Binding::Edge(r))) =
                (env.get(&tc.left), env.get(&tc.right))
            else {
                continue;
            };
            let (lt, rt) = (g.edge(*l).time, g.edge(*r).time);
            if tc.within {
                let (lo, hi) = tc.gap.unwrap_or((0, 0));
                let gap = (lt - rt).abs();
                if gap < lo || gap > hi {
                    return false;
                }
                continue;
            }
            let (first, second) = if tc.before { (lt, rt) } else { (rt, lt) };
            match tc.gap {
                None => {
                    if first >= second {
                        return false;
                    }
                }
                Some((lo, hi)) => {
                    let gap = second - first;
                    if gap < lo || gap > hi {
                        return false;
                    }
                }
            }
        }
        for cp in &self.cross {
            let (Some(lb), Some(rb)) = (env.get(&cp.left_var), env.get(&cp.right_var)) else {
                continue;
            };
            let lv = binding_prop(g, *lb, &cp.left_prop);
            let rv = binding_prop(g, *rb, &cp.right_prop);
            if lv.is_null() || rv.is_null() || !cp.op.eval(&lv, &rv) {
                return false;
            }
        }
        true
    }

    fn project(
        &self,
        g: &GraphDb,
        env: &BTreeMap<String, Binding>,
    ) -> Result<Vec<Value>, MatchError> {
        self.returns
            .iter()
            .map(|(var, prop)| {
                let b = env
                    .get(var)
                    .ok_or_else(|| MatchError::Unbound(var.clone()))?;
                Ok(binding_prop(g, *b, prop))
            })
            .collect()
    }
}

fn binding_prop(g: &GraphDb, b: Binding, prop: &str) -> Value {
    match b {
        Binding::Node(n) => match prop {
            "id" => Value::Int(n as i64),
            _ => g.node(n).props.get(prop).cloned().unwrap_or(Value::Null),
        },
        Binding::Edge(e) => match prop {
            "id" => Value::Int(e as i64),
            "time" => Value::Int(g.edge(e).time),
            "label" | "optype" => Value::str(g.edge(e).label.clone()),
            _ => g.edge(e).props.get(prop).cloned().unwrap_or(Value::Null),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// bash --start--> vim --write--> /tmp/x ; sshd --read--> /etc/passwd
    fn graph() -> GraphDb {
        let mut g = GraphDb::new();
        let bash = g.add_node("proc", vec![("exe_name", Value::str("bash"))]);
        let vim = g.add_node("proc", vec![("exe_name", Value::str("vim"))]);
        let tmp = g.add_node("file", vec![("name", Value::str("/tmp/x"))]);
        let sshd = g.add_node("proc", vec![("exe_name", Value::str("sshd"))]);
        let passwd = g.add_node("file", vec![("name", Value::str("/etc/passwd"))]);
        g.add_edge(bash, vim, "start", 10, vec![]);
        g.add_edge(vim, tmp, "write", 20, vec![]);
        g.add_edge(sshd, passwd, "read", 5, vec![]);
        g
    }

    fn triple(sv: &str, sl: &str, ev: &str, ops: &[&str], dv: &str, dl: &str) -> Triple {
        Triple {
            src: NodePat::with_var(sv, sl, vec![]),
            edge: EdgePat::new(ev, ops, vec![]),
            dst: NodePat::with_var(dv, dl, vec![]),
        }
    }

    #[test]
    fn connected_path_match() {
        let g = graph();
        let q = PatternQuery::new(vec![
            triple("p1", "proc", "e1", &["start"], "p2", "proc"),
            triple("p2", "proc", "e2", &["write"], "f", "file"),
        ]);
        let rows = q.run(&g, None).unwrap();
        assert_eq!(rows.len(), 1);
        // Returns p1, p2, f ids (deduped).
        assert_eq!(rows[0], vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn property_predicates_filter() {
        let g = graph();
        let q = PatternQuery::new(vec![Triple {
            src: NodePat::with_var("p", "proc", vec![PropPred::like("exe_name", "ssh%")]),
            edge: EdgePat::new("e", &["read"], vec![]),
            dst: NodePat::with_var("f", "file", vec![PropPred::like("name", "%passwd")]),
        }]);
        assert_eq!(q.run(&g, None).unwrap().len(), 1);

        let q = PatternQuery::new(vec![Triple {
            src: NodePat::with_var("p", "proc", vec![PropPred::eq("exe_name", "bash")]),
            edge: EdgePat::new("e", &["read"], vec![]),
            dst: NodePat::with_var("f", "file", vec![]),
        }]);
        assert!(q.run(&g, None).unwrap().is_empty());
    }

    #[test]
    fn disconnected_patterns_cartesian_with_temporal() {
        let g = graph();
        // Two disconnected steps related only by time: read before start.
        let mut q = PatternQuery::new(vec![
            triple("p1", "proc", "e1", &["read"], "f1", "file"),
            triple("p2", "proc", "e2", &["start"], "p3", "proc"),
        ]);
        q.temporal.push(TempConstraint {
            left: "e1".into(),
            before: true,
            right: "e2".into(),
            gap: None,
            within: false,
        });
        assert_eq!(q.run(&g, None).unwrap().len(), 1);

        // Flipping the order eliminates the match.
        q.temporal[0].before = false;
        assert!(q.run(&g, None).unwrap().is_empty());
    }

    #[test]
    fn temporal_gap_bounds() {
        let g = graph();
        let mut q = PatternQuery::new(vec![
            triple("p1", "proc", "e1", &["start"], "p2", "proc"),
            triple("p2", "proc", "e2", &["write"], "f", "file"),
        ]);
        q.temporal.push(TempConstraint {
            left: "e1".into(),
            before: true,
            right: "e2".into(),
            gap: Some((5, 15)),
            within: false,
        });
        assert_eq!(q.run(&g, None).unwrap().len(), 1, "gap is 10");
        q.temporal[0].gap = Some((11, 20));
        assert!(q.run(&g, None).unwrap().is_empty());
    }

    #[test]
    fn within_gap_is_symmetric() {
        let g = graph();
        // start at t=10, write at t=20: |gap| = 10.
        let mut q = PatternQuery::new(vec![
            triple("p1", "proc", "e1", &["write"], "f", "file"),
            triple("p2", "proc", "e2", &["start"], "p1", "proc"),
        ]);
        q.temporal.push(TempConstraint {
            left: "e1".into(),
            before: true,
            right: "e2".into(),
            gap: Some((5, 15)),
            within: true,
        });
        assert_eq!(q.run(&g, None).unwrap().len(), 1, "within ignores order");
        q.temporal[0].gap = Some((11, 15));
        assert!(
            q.run(&g, None).unwrap().is_empty(),
            "gap 10 below lower bound"
        );
    }

    #[test]
    fn cross_variable_property_comparison() {
        let mut g = GraphDb::new();
        let a = g.add_node(
            "proc",
            vec![("exe_name", Value::str("x")), ("user", Value::str("root"))],
        );
        let b = g.add_node(
            "proc",
            vec![("exe_name", Value::str("y")), ("user", Value::str("root"))],
        );
        let c = g.add_node(
            "proc",
            vec![("exe_name", Value::str("z")), ("user", Value::str("web"))],
        );
        let f = g.add_node("file", vec![("name", Value::str("f"))]);
        g.add_edge(a, f, "write", 1, vec![]);
        g.add_edge(b, f, "read", 2, vec![]);
        g.add_edge(c, f, "read", 3, vec![]);

        let mut q = PatternQuery::new(vec![
            triple("p1", "proc", "e1", &["write"], "f1", "file"),
            triple("p2", "proc", "e2", &["read"], "f1", "file"),
        ]);
        q.cross.push(CrossPred {
            left_var: "p1".into(),
            left_prop: "user".into(),
            op: POp::Eq,
            right_var: "p2".into(),
            right_prop: "user".into(),
        });
        let rows = q.run(&g, None).unwrap();
        assert_eq!(rows.len(), 1, "only the root-root pair");
    }

    #[test]
    fn shared_dst_var_constrains() {
        let g = graph();
        // p2 shared: start's dst must equal write's src.
        let q = PatternQuery::new(vec![
            triple("p1", "proc", "e1", &["start"], "p2", "proc"),
            triple("p2", "proc", "e2", &["read"], "f", "file"),
        ]);
        assert!(q.run(&g, None).unwrap().is_empty(), "vim reads nothing");
    }

    #[test]
    fn index_used_for_candidates() {
        let mut g = graph();
        g.create_node_index("proc", "exe_name");
        let q = PatternQuery::new(vec![Triple {
            src: NodePat::with_var("p", "proc", vec![PropPred::eq("exe_name", "bash")]),
            edge: EdgePat::new("e", &[], vec![]),
            dst: NodePat::with_var("q", "proc", vec![]),
        }]);
        let (rows, stats) = q.run_stats(&g, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(stats.expansions <= 2, "index narrows candidates");
    }

    #[test]
    fn edge_time_window() {
        let g = graph();
        let mut t = triple("p1", "proc", "e1", &[], "p2", "proc");
        t.edge = t.edge.between(0, 9);
        let q = PatternQuery::new(vec![t]);
        assert!(q.run(&g, None).unwrap().is_empty(), "start is at t=10");
    }

    #[test]
    fn projection_of_props_and_edge_fields() {
        let g = graph();
        let mut q = PatternQuery::new(vec![triple("p1", "proc", "e1", &["start"], "p2", "proc")]);
        q.returns = vec![
            ("p1".into(), "exe_name".into()),
            ("e1".into(), "optype".into()),
            ("e1".into(), "time".into()),
            ("p2".into(), "missing".into()),
        ];
        let rows = q.run(&g, None).unwrap();
        assert_eq!(
            rows[0],
            vec![
                Value::str("bash"),
                Value::str("start"),
                Value::Int(10),
                Value::Null
            ]
        );
    }

    #[test]
    fn timeout_on_blowup() {
        // A dense bipartite graph with two disconnected steps forces a big
        // cartesian expansion; a tiny deadline must abort it.
        let mut g = GraphDb::new();
        let mut procs = Vec::new();
        for i in 0..60 {
            procs.push(g.add_node("proc", vec![("exe_name", Value::str(format!("p{i}")))]));
        }
        let f = g.add_node("file", vec![("name", Value::str("f"))]);
        for day in 0..60 {
            for &p in &procs {
                g.add_edge(p, f, "read", day, vec![]);
            }
        }
        let q = PatternQuery::new(vec![
            triple("a", "proc", "e1", &["read"], "f1", "file"),
            triple("b", "proc", "e2", &["read"], "f2", "file"),
            triple("c", "proc", "e3", &["read"], "f3", "file"),
        ]);
        let deadline = Instant::now() + std::time::Duration::from_millis(1);
        match q.run(&g, Some(deadline)) {
            Err(MatchError::Timeout) => {}
            Ok(rows) => panic!("expected timeout, got {} rows", rows.len()),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
