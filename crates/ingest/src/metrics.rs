//! The ingestion pipeline's handles into the process-wide telemetry
//! registry.

use aiql_telemetry::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct IngestMetrics {
    /// `aiql_ingest_queue_rows` — rows (events + entities) currently
    /// queued, the level the high-water mark bounds.
    pub queue_rows: Gauge,
    /// `aiql_ingest_backpressure_rejections_total` — submits refused at
    /// the high-water mark.
    pub backpressure_rejections: Counter,
    /// `aiql_ingest_flush_micros` — full flush latency, including the
    /// acknowledging fsync on durable ingestors.
    pub flush_micros: Histogram,
    /// `aiql_ingest_flush_rows` — rows applied per flush.
    pub flush_rows: Histogram,
    /// `aiql_ingest_dead_letter_rows_total` — rows the storage layer
    /// rejected and the flush counted, skipped, and moved past.
    pub dead_letter_rows: Counter,
}

pub(crate) fn metrics() -> &'static IngestMetrics {
    static METRICS: OnceLock<IngestMetrics> = OnceLock::new();
    METRICS.get_or_init(|| IngestMetrics {
        queue_rows: global().gauge("aiql_ingest_queue_rows"),
        backpressure_rejections: global().counter("aiql_ingest_backpressure_rejections_total"),
        flush_micros: global().histogram("aiql_ingest_flush_micros"),
        flush_rows: global().histogram("aiql_ingest_flush_rows"),
        dead_letter_rows: global().counter("aiql_ingest_dead_letter_rows_total"),
    })
}
