//! The ingestion pipeline's handles into the process-wide telemetry
//! registry.

use aiql_telemetry::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct IngestMetrics {
    /// `aiql_ingest_queue_rows` — rows (events + entities) currently
    /// queued, the level the high-water mark bounds.
    pub queue_rows: Gauge,
    /// `aiql_ingest_backpressure_rejections_total` — submits refused at
    /// the high-water mark.
    pub backpressure_rejections: Counter,
    /// `aiql_ingest_flush_micros` — full flush latency, including the
    /// acknowledging fsync on durable ingestors.
    pub flush_micros: Histogram,
    /// `aiql_ingest_flush_rows` — rows applied per flush.
    pub flush_rows: Histogram,
    /// `aiql_ingest_dead_letter_rows_total` — rows the storage layer
    /// rejected and the flush counted, skipped, and moved past.
    pub dead_letter_rows: Counter,
    /// `aiql_ingest_dead_letter_queue_depth` — dead letters currently
    /// retained for inspection/draining (bounded by
    /// [`crate::ingestor::DEAD_LETTER_CAP`]).
    pub dead_letter_queue_depth: Gauge,
    /// `aiql_ingest_flush_retries_total` — flush attempts re-run after a
    /// transient durability fault.
    pub flush_retries: Counter,
    /// `aiql_ingest_degraded_transitions_total` — entries into degraded
    /// (out-of-space) mode.
    pub degraded_transitions: Counter,
    /// `aiql_ingest_state` — current [`crate::IngestState`] as its
    /// discriminant (0 healthy, 1 degraded, 2 poisoned).
    pub state: Gauge,
}

pub(crate) fn metrics() -> &'static IngestMetrics {
    static METRICS: OnceLock<IngestMetrics> = OnceLock::new();
    METRICS.get_or_init(|| IngestMetrics {
        queue_rows: global().gauge("aiql_ingest_queue_rows"),
        backpressure_rejections: global().counter("aiql_ingest_backpressure_rejections_total"),
        flush_micros: global().histogram("aiql_ingest_flush_micros"),
        flush_rows: global().histogram("aiql_ingest_flush_rows"),
        dead_letter_rows: global().counter("aiql_ingest_dead_letter_rows_total"),
        dead_letter_queue_depth: global().gauge("aiql_ingest_dead_letter_queue_depth"),
        flush_retries: global().counter("aiql_ingest_flush_retries_total"),
        degraded_transitions: global().counter("aiql_ingest_degraded_transitions_total"),
        state: global().gauge("aiql_ingest_state"),
    })
}
