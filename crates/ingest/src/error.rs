//! Ingestion errors.

use crate::batch::EventBatch;
use aiql_rdb::RdbError;
use aiql_storage::PersistError;
use std::fmt;

/// Why a submit or flush failed.
#[derive(Debug)]
pub enum IngestError {
    /// The bounded append queue is full: accepting the batch would push the
    /// queued-event count past the high-water mark. The rejected batch is
    /// handed back untouched (the `mpsc::TrySendError` pattern) — the
    /// caller should flush (or slow down) and resubmit it.
    Backpressure {
        /// The shipment that was not enqueued, returned for resubmission.
        batch: EventBatch,
        /// Rows (events + entities) already queued.
        queued_rows: usize,
        /// The configured limit.
        high_water_mark: usize,
    },
    /// The storage layer rejected a row.
    Storage(RdbError),
    /// The durability layer failed: the write-ahead log could not be
    /// written/synced, or recovery/checkpointing failed. Unlike a
    /// dead-lettered row this aborts the flush — rows past this point were
    /// never acknowledged. Transient log I/O faults are retried (bounded,
    /// with backoff — see [`crate::RetryPolicy`]) before surfacing here.
    Durable(PersistError),
    /// The storage stack reported it is out of space (`ENOSPC`) and the
    /// ingestor entered degraded mode: the unacknowledged remainder stays
    /// queued, new submits are back-pressured, and the next successful
    /// flush — after the operator frees space — returns to healthy.
    /// Readable without an error in hand via
    /// [`Ingestor::state`](crate::Ingestor::state).
    Degraded {
        /// Rows still queued, unacknowledged, awaiting space.
        queued_rows: usize,
        /// The out-of-space fault that forced the transition.
        cause: PersistError,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Backpressure {
                batch,
                queued_rows,
                high_water_mark,
            } => write!(
                f,
                "back-pressure: {queued_rows} rows queued + {} submitted \
                 exceeds high-water mark {high_water_mark}",
                batch.weight()
            ),
            IngestError::Storage(e) => write!(f, "storage error during ingest: {e}"),
            IngestError::Durable(e) => write!(f, "durability error during ingest: {e}"),
            IngestError::Degraded { queued_rows, cause } => write!(
                f,
                "ingestion degraded (out of space, {queued_rows} rows queued \
                 unacknowledged): {cause}"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<RdbError> for IngestError {
    fn from(e: RdbError) -> IngestError {
        IngestError::Storage(e)
    }
}

impl From<PersistError> for IngestError {
    fn from(e: PersistError) -> IngestError {
        IngestError::Durable(e)
    }
}
