//! Live ingestion for the AIQL event store.
//!
//! The paper's deployment setting is a server continuously fed by monitoring
//! agents on ~150 hosts; the batch loader
//! ([`EventStore::ingest`](aiql_storage::EventStore::ingest)) only covers
//! the one-shot evaluation setting. This crate turns the store into a live
//! system:
//!
//! - **[`Ingestor`]** accepts out-of-order [`EventBatch`]es through a
//!   bounded append queue; a configurable high-water mark applies
//!   back-pressure ([`IngestError::Backpressure`]) instead of buffering
//!   without bound.
//! - **Time synchronization on the fly**: each batch may carry clock
//!   samples; at apply time every event's timestamps are shifted by the
//!   submitting agent's current offset estimate — the same server-side
//!   correction the batch path applies via
//!   [`Synchronizer::apply`](aiql_storage::timesync::Synchronizer::apply).
//! - **Partition rollover**: rows are routed to their `(day, agent group)`
//!   partition as they arrive; when a batch crosses a day boundary the
//!   store materializes the next day's partitions automatically, and the
//!   [`FlushReport`] names every partition created.
//! - **Incremental index maintenance**: new rows and new partitions pick up
//!   exactly the secondary indexes the batch loader builds
//!   ([`schema::index_plan`](aiql_storage::schema::index_plan)), so queries
//!   against a live store run the same plans as against a batch-loaded one
//!   — `tests/proptest_ingest.rs` at the workspace root proves result
//!   equivalence for pattern, dependency, and anomaly queries.
//! - **Snapshot-consistent reads**: the store lives behind a
//!   [`SharedStore`](aiql_storage::SharedStore) — an epoch-swapped
//!   snapshot store. A flush applies the whole queue to the writer's
//!   private head and publishes one new immutable snapshot at the end, so
//!   queries (e.g. via `aiql_engine::run_live`) pin a point-in-time view
//!   and see flush boundaries, never half-applied batches — without
//!   readers and the flush ever waiting on each other.
//!
//! # Example
//!
//! ```
//! use aiql_ingest::{EventBatch, IngestConfig, Ingestor};
//! use aiql_model::{AgentId, Entity, EntityKind, Event, OpType, Timestamp};
//!
//! let mut ing = Ingestor::new(IngestConfig::live()).unwrap();
//! let agent = AgentId(1);
//! let mut batch = EventBatch::new();
//! let p = batch.add_entity(Entity::process(1.into(), agent, "bash", 42));
//! let f = batch.add_entity(Entity::file(2.into(), agent, "/etc/passwd"));
//! batch.add_event(Event::new(
//!     1.into(), agent, p, OpType::Read, f, EntityKind::File,
//!     Timestamp::from_ymd(2017, 1, 1).unwrap(),
//! ));
//! ing.submit(batch).unwrap();
//! let report = ing.flush().unwrap();
//! assert_eq!(report.events, 1);
//! assert_eq!(ing.shared().read().event_count(), 1);
//! ```

pub mod batch;
pub mod error;
pub mod ingestor;
mod metrics;

pub use batch::EventBatch;
pub use error::IngestError;
pub use ingestor::{
    DeadLetter, DeadRow, FlushReport, IngestConfig, IngestState, IngestStats, Ingestor,
    RetryPolicy, DEAD_LETTER_CAP,
};
