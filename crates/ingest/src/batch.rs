//! The unit of streaming ingestion: one agent shipment of entities, events,
//! and clock samples.

use aiql_model::{AgentId, Entity, EntityId, Event, EventId, Timestamp};
use aiql_storage::timesync::ClockSample;

/// One shipment from the collection pipeline.
///
/// Batches carry whatever an agent (or a fan-in relay) accumulated since its
/// last send: new entities, events referencing them (or entities shipped
/// earlier), and optionally fresh clock samples for server-side time
/// synchronization. Events inside a batch need not be time-ordered, and
/// batches from different agents may interleave arbitrarily — the ingestor
/// tolerates both.
#[derive(Debug, Clone, Default)]
pub struct EventBatch {
    /// Entities first referenced by this shipment.
    pub entities: Vec<Entity>,
    /// Events, stamped with the *agent's* clock (correction happens
    /// server-side at apply time).
    pub events: Vec<Event>,
    /// Clock samples to fold into the per-agent offset estimate before this
    /// batch's events are applied.
    pub clock_samples: Vec<(AgentId, ClockSample)>,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> EventBatch {
        EventBatch::default()
    }

    /// Adds an entity, returning its ID (mirrors
    /// [`Dataset::add_entity`](aiql_model::Dataset::add_entity)).
    pub fn add_entity(&mut self, entity: Entity) -> EntityId {
        let id = entity.id;
        self.entities.push(entity);
        id
    }

    /// Adds an event, returning its ID.
    pub fn add_event(&mut self, event: Event) -> EventId {
        let id = event.id;
        self.events.push(event);
        id
    }

    /// Adds a clock sample for `agent`.
    pub fn add_clock_sample(&mut self, agent: AgentId, sample: ClockSample) {
        self.clock_samples.push((agent, sample));
    }

    /// Number of events in the batch (named to avoid the `len`/`is_empty`
    /// convention — an entity-only batch has zero events but is not empty).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Rows this batch adds to the append queue — events plus entities,
    /// the unit the ingestor's high-water mark counts.
    pub fn weight(&self) -> usize {
        self.events.len() + self.entities.len()
    }

    /// Whether the batch carries nothing at all.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty() && self.events.is_empty() && self.clock_samples.is_empty()
    }

    /// The batch's event-time span on the agent clock, if it has events.
    pub fn time_span(&self) -> Option<(Timestamp, Timestamp)> {
        let lo = self.events.iter().map(|e| e.start).min()?;
        let hi = self.events.iter().map(|e| e.start).max()?;
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{EntityKind, OpType};

    #[test]
    fn builders_and_span() {
        let mut b = EventBatch::new();
        assert!(b.is_empty());
        let a = AgentId(3);
        let p = b.add_entity(Entity::process(1.into(), a, "p", 1));
        let f = b.add_entity(Entity::file(2.into(), a, "/x"));
        b.add_event(Event::new(
            1.into(),
            a,
            p,
            OpType::Write,
            f,
            EntityKind::File,
            Timestamp(500),
        ));
        b.add_event(Event::new(
            2.into(),
            a,
            p,
            OpType::Read,
            f,
            EntityKind::File,
            Timestamp(100),
        ));
        b.add_clock_sample(
            a,
            ClockSample {
                agent_time: 0,
                server_time: 10,
            },
        );
        assert_eq!(b.event_count(), 2);
        assert_eq!(b.weight(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.time_span(), Some((Timestamp(100), Timestamp(500))));
        assert!(EventBatch::new().time_span().is_none());
    }
}
