//! The streaming ingestor: bounded queue, on-the-fly timesync, partition
//! rollover, incremental indexes, optional write-ahead durability.

use crate::batch::EventBatch;
use crate::error::IngestError;
use aiql_model::{Entity, Event, Timestamp};
use aiql_rdb::{PartKey, RdbError};
use aiql_storage::timesync::Synchronizer;
use aiql_storage::{
    DurableStore, DurableWrite, EventStore, PersistError, RecoveryReport, SharedStore, StoreConfig,
    StoreStamp, StoreWriter,
};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How [`Ingestor::flush`] treats *transient* durability faults (a log
/// write failing with a retryable I/O error): the flush re-attempts the
/// remaining queue up to `max_retries` times, sleeping an exponentially
/// growing backoff between attempts.
///
/// Fatal faults are never retried here: a poisoned log handle (failed
/// fsync — the acknowledgement itself is untrustworthy) surfaces as
/// [`IngestError::Durable`], and out-of-space degrades instead
/// ([`IngestError::Degraded`]) because retrying into a full disk is just
/// load.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Sleep before the first retry; doubled per subsequent attempt,
    /// capped at 100 ms. `Duration::ZERO` retries immediately
    /// (deterministic tests).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.backoff
            .saturating_mul(factor)
            .min(Duration::from_millis(100))
    }
}

/// Ingestor construction options.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Layout and index options of the backing store.
    pub store: StoreConfig,
    /// Maximum number of queued (submitted but unflushed) rows — events
    /// plus entities. A submit that would exceed it is rejected with
    /// [`IngestError::Backpressure`].
    pub high_water_mark: usize,
    /// Bounded retry-with-backoff for transient durability faults during
    /// flush.
    pub retry: RetryPolicy,
}

impl IngestConfig {
    /// The live default: AIQL's partitioned, indexed layout with a 64 Ki
    /// row queue bound.
    pub fn live() -> IngestConfig {
        IngestConfig {
            store: StoreConfig::partitioned(),
            high_water_mark: 64 * 1024,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the high-water mark, builder style.
    pub fn with_high_water_mark(mut self, rows: usize) -> IngestConfig {
        self.high_water_mark = rows;
        self
    }

    /// Sets the store configuration, builder style.
    pub fn with_store(mut self, store: StoreConfig) -> IngestConfig {
        self.store = store;
        self
    }

    /// Sets the transient-fault retry policy, builder style.
    pub fn with_retry(mut self, retry: RetryPolicy) -> IngestConfig {
        self.retry = retry;
        self
    }
}

/// The ingestor's health, readable via [`Ingestor::state`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IngestState {
    /// Appends flow normally.
    #[default]
    Healthy = 0,
    /// The storage stack ran out of space. Submits are back-pressured and
    /// the unacknowledged remainder stays queued; the first successful
    /// flush (after the operator frees space) returns to [`Healthy`].
    ///
    /// [`Healthy`]: IngestState::Healthy
    Degraded = 1,
    /// The log handle is poisoned (a failed fsync may have silently lost
    /// acknowledged-in-flight records). Terminal for this ingestor:
    /// reopen the directory ([`Ingestor::durable`]) to resume with a
    /// writer whose acknowledgements are trustworthy again.
    Poisoned = 2,
}

/// Upper bound on retained dead letters; older entries are dropped (and
/// counted in [`IngestStats::dead_letters_dropped`]) once it is reached.
pub const DEAD_LETTER_CAP: usize = 1024;

/// The row inside a [`DeadLetter`].
#[derive(Debug, Clone)]
pub enum DeadRow {
    /// A rejected event, as attempted (timestamps already corrected).
    Event(Event),
    /// A rejected entity.
    Entity(Entity),
}

/// One row the storage layer rejected during a flush, retained for
/// inspection ([`Ingestor::dead_letters`]) and draining
/// ([`Ingestor::drain_dead_letters`]).
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The rejected row.
    pub row: DeadRow,
    /// Why the storage layer refused it.
    pub error: RdbError,
}

/// Running totals over an ingestor's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Batches accepted into the queue.
    pub batches_submitted: u64,
    /// Batches rejected by back-pressure.
    pub batches_rejected: u64,
    /// Batches applied to the store.
    pub batches_applied: u64,
    /// Events applied.
    pub events_applied: u64,
    /// Entities applied.
    pub entities_applied: u64,
    /// Events whose corrected start time was behind the watermark when
    /// applied (late / out-of-order arrivals).
    pub out_of_order_events: u64,
    /// Partitions materialized by rollover.
    pub rollovers: u64,
    /// Rows the storage layer rejected and the flush dead-lettered.
    pub failed_rows: u64,
    /// Flush attempts re-run after a transient durability fault.
    pub flush_retries: u64,
    /// Transitions into [`IngestState::Degraded`] (out-of-space events).
    pub degraded_entries: u64,
    /// Dead letters evicted unseen because the bounded dead-letter queue
    /// ([`DEAD_LETTER_CAP`]) was full.
    pub dead_letters_dropped: u64,
    /// Deepest the queue has been, in rows (events + entities).
    pub max_queue_depth: usize,
}

/// What one [`Ingestor::flush`] applied.
#[derive(Debug, Clone, Default)]
pub struct FlushReport {
    /// Batches drained from the queue.
    pub batches: usize,
    /// Events appended.
    pub events: usize,
    /// Entities appended.
    pub entities: usize,
    /// Events applied behind the watermark (out of order).
    pub out_of_order_events: usize,
    /// Every `(day, agent group)` partition this flush rolled over into,
    /// in creation order.
    pub new_partitions: Vec<PartKey>,
    /// Rows the storage layer rejected (dead-lettered: counted, skipped,
    /// first error kept — see [`Ingestor::flush`]).
    pub failed_rows: usize,
    /// The first storage error behind [`FlushReport::failed_rows`].
    pub first_error: Option<aiql_rdb::RdbError>,
    /// Store version after the flush.
    pub stamp: StoreStamp,
}

impl FlushReport {
    /// Folds a later flush's report into this one (counts add, partition
    /// lists concatenate, the stamp advances to the later one).
    pub fn merge(&mut self, later: FlushReport) {
        self.batches += later.batches;
        self.events += later.events;
        self.entities += later.entities;
        self.out_of_order_events += later.out_of_order_events;
        self.new_partitions.extend(later.new_partitions);
        self.failed_rows += later.failed_rows;
        if self.first_error.is_none() {
            self.first_error = later.first_error;
        }
        self.stamp = self.stamp.max(later.stamp);
    }
}

/// Where flushed rows land: a plain in-memory store, or a durable store
/// that write-ahead-logs every row before inserting it.
#[derive(Debug)]
enum Backend {
    Plain(SharedStore),
    Durable(DurableStore),
}

/// One flush's write path, matching the backend: a single store write
/// session either way, plus the WAL handle when durable. Appends go to the
/// writer's private head store; readers keep serving the previously
/// published snapshot until the session publishes — on drop for the plain
/// path, after the acknowledging fsync ([`DurableWrite::commit`]) for the
/// durable one.
enum Session<'a> {
    Plain(StoreWriter<'a>),
    Durable(DurableWrite<'a>),
}

impl Session<'_> {
    fn append_entity(&mut self, e: &aiql_model::Entity) -> Result<(), PersistError> {
        match self {
            Session::Plain(store) => store.append_entity(e).map_err(PersistError::Storage),
            Session::Durable(w) => w.append_entity(e),
        }
    }

    fn append_event(
        &mut self,
        ev: &aiql_model::Event,
    ) -> Result<aiql_storage::AppendOutcome, PersistError> {
        match self {
            Session::Plain(store) => store.append_event(ev).map_err(PersistError::Storage),
            Session::Durable(w) => w.append_event(ev),
        }
    }
}

/// Applies one batch through the write session, folding clock samples into
/// `sync`, appending entities then offset-corrected events, and advancing
/// `watermark` over the rows that landed.
///
/// Two failure channels, deliberately distinct:
///
/// - rows the storage layer (or the WAL codec) rejects are
///   **dead-lettered** — counted in [`FlushReport::failed_rows`] with the
///   first error kept, then skipped, because retrying them can never
///   succeed;
/// - a log I/O failure is a **durability fault** — the unprocessed
///   remainder of the batch is returned for requeueing (the single requeue
///   point lives in [`Ingestor::flush`]) and retried once the fault
///   clears.
fn apply_batch(
    session: &mut Session<'_>,
    sync: &mut Synchronizer,
    watermark: &mut Option<Timestamp>,
    report: &mut FlushReport,
    dead: &mut Vec<DeadLetter>,
    batch: EventBatch,
) -> Result<(), (PersistError, EventBatch)> {
    let EventBatch {
        entities,
        events,
        clock_samples,
    } = batch;
    for (si, (agent, sample)) in clock_samples.iter().enumerate() {
        if let Session::Durable(w) = session {
            if let Err(e) = w.record_clock_sample(*agent, sample.agent_time, sample.server_time) {
                return Err((
                    e,
                    EventBatch {
                        entities,
                        events,
                        clock_samples: clock_samples[si..].to_vec(),
                    },
                ));
            }
        }
        sync.record(*agent, *sample);
    }
    for (ei, entity) in entities.iter().enumerate() {
        match session.append_entity(entity) {
            Ok(()) => report.entities += 1,
            Err(PersistError::Storage(e)) => {
                report.failed_rows += 1;
                report.first_error.get_or_insert(e.clone());
                dead.push(DeadLetter {
                    row: DeadRow::Entity(entity.clone()),
                    error: e,
                });
            }
            Err(e) => {
                return Err((
                    e,
                    EventBatch {
                        entities: entities[ei..].to_vec(),
                        events,
                        clock_samples: Vec::new(),
                    },
                ));
            }
        }
    }
    // Events are plain-old-data (no heap fields), so the corrected copy
    // per row is cheap.
    for (vi, ev) in events.iter().enumerate() {
        let offset = sync.offset(ev.agent);
        let mut corrected = ev.clone();
        corrected.start = corrected.start.saturating_add(offset);
        corrected.end = corrected.end.saturating_add(offset);
        match session.append_event(&corrected) {
            Ok(outcome) => {
                if watermark.is_some_and(|w| corrected.start < w) {
                    report.out_of_order_events += 1;
                }
                *watermark = Some(match *watermark {
                    Some(w) => w.max(corrected.start),
                    None => corrected.start,
                });
                if let Some(key) = outcome.created_partition {
                    report.new_partitions.push(key);
                }
                report.events += 1;
            }
            Err(PersistError::Storage(e)) => {
                report.failed_rows += 1;
                report.first_error.get_or_insert(e.clone());
                dead.push(DeadLetter {
                    row: DeadRow::Event(corrected),
                    error: e,
                });
            }
            Err(e) => {
                return Err((
                    e,
                    EventBatch {
                        entities: Vec::new(),
                        events: events[vi..].to_vec(),
                        clock_samples: Vec::new(),
                    },
                ));
            }
        }
    }
    Ok(())
}

/// Streaming front door of the event store.
///
/// `submit` enqueues shipments cheaply (bounded by the high-water mark);
/// `flush` drains the queue into the store under a single write session,
/// correcting timestamps per agent as it goes. Readers holding the
/// [`SharedStore`] handle (from [`Ingestor::shared`]) observe flushes
/// atomically — each flush publishes one new immutable snapshot, and
/// queries pin whichever snapshot was current when they started, so reads
/// never wait behind a flush and a flush never waits for readers.
///
/// A **durable** ingestor ([`Ingestor::durable`]) additionally write-ahead
/// logs every corrected row before the in-memory insert and fsyncs the log
/// before `flush` returns — an append is acknowledged only once it is on
/// disk. Back-pressure is unchanged: the high-water mark still bounds the
/// (in-memory, unacknowledged) queue. [`Ingestor::checkpoint`] snapshots
/// the store and truncates the log.
#[derive(Debug)]
pub struct Ingestor {
    backend: Backend,
    sync: Synchronizer,
    queue: VecDeque<EventBatch>,
    queued_rows: usize,
    watermark: Option<Timestamp>,
    config: IngestConfig,
    stats: IngestStats,
    state: IngestState,
    dead_letters: VecDeque<DeadLetter>,
}

impl Ingestor {
    /// An ingestor over a fresh, empty store.
    pub fn new(config: IngestConfig) -> Result<Ingestor, IngestError> {
        Ok(Ingestor::over(
            SharedStore::new(EventStore::empty(config.store)?),
            config,
        ))
    }

    /// An ingestor appending to an existing shared store (e.g. one seeded by
    /// a batch load).
    pub fn over(shared: SharedStore, config: IngestConfig) -> Ingestor {
        Ingestor {
            backend: Backend::Plain(shared),
            sync: Synchronizer::new(),
            queue: VecDeque::new(),
            queued_rows: 0,
            watermark: None,
            config,
            stats: IngestStats::default(),
            state: IngestState::Healthy,
            dead_letters: VecDeque::new(),
        }
    }

    /// A durable ingestor over the store directory `dir`.
    ///
    /// A fresh directory is initialized (empty baseline snapshot + empty
    /// log). An existing one is **recovered** first — newest snapshot plus
    /// WAL-tail replay, tolerating a torn final record — and ingestion
    /// resumes exactly where the acknowledged stream left off: same store
    /// contents, same per-agent clock-offset estimates, watermark re-derived
    /// from the recovered events. The recovery report is returned for
    /// existing directories (`None` when freshly initialized).
    pub fn durable(
        config: IngestConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Ingestor, Option<RecoveryReport>), IngestError> {
        let opened = DurableStore::open(dir, config.store)?;
        let watermark = opened.store.shared().read().time_span().map(|(_, hi)| hi);
        Ok((
            Ingestor {
                backend: Backend::Durable(opened.store),
                sync: opened.sync,
                queue: VecDeque::new(),
                queued_rows: 0,
                watermark,
                config,
                stats: IngestStats::default(),
                state: IngestState::Healthy,
                dead_letters: VecDeque::new(),
            },
            opened.report,
        ))
    }

    /// A cloneable handle for concurrent readers (`aiql_engine::run_live`
    /// is the query side).
    pub fn shared(&self) -> SharedStore {
        match &self.backend {
            Backend::Plain(s) => s.clone(),
            Backend::Durable(d) => d.shared(),
        }
    }

    /// Whether appends are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        matches!(self.backend, Backend::Durable(_))
    }

    /// The construction options.
    pub fn config(&self) -> IngestConfig {
        self.config
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Rows (events + entities) submitted but not yet flushed — what the
    /// high-water mark bounds.
    pub fn queued_rows(&self) -> usize {
        self.queued_rows
    }

    /// The highest corrected event start time applied so far — the point up
    /// to which the stored stream is (modulo late arrivals) complete.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.watermark
    }

    /// The ingestor's current health (see [`IngestState`]).
    pub fn state(&self) -> IngestState {
        self.state
    }

    /// The retained dead letters, oldest first, without consuming them.
    pub fn dead_letters(&self) -> impl Iterator<Item = &DeadLetter> {
        self.dead_letters.iter()
    }

    /// Takes every retained dead letter, oldest first. Each letter is
    /// returned exactly once; a second drain (with no flushes in between)
    /// is empty.
    pub fn drain_dead_letters(&mut self) -> Vec<DeadLetter> {
        let letters: Vec<DeadLetter> = self.dead_letters.drain(..).collect();
        crate::metrics::metrics().dead_letter_queue_depth.set(0);
        letters
    }

    fn set_state(&mut self, next: IngestState) {
        if self.state == next {
            return;
        }
        if next == IngestState::Degraded {
            self.stats.degraded_entries += 1;
            crate::metrics::metrics().degraded_transitions.inc();
        }
        self.state = next;
        crate::metrics::metrics().state.set(next as i64);
    }

    /// Enqueues a shipment, applying back-pressure at the high-water mark
    /// (which bounds queued *rows*: events plus entities, so entity-heavy
    /// shipments cannot buffer without bound either).
    ///
    /// The rejected batch is returned untouched inside
    /// [`IngestError::Backpressure`] — the caller may [`Ingestor::flush`]
    /// and resubmit it.
    ///
    /// While [`IngestState::Degraded`] (out of space) every submit is
    /// back-pressured the same way, regardless of queue depth: buffering
    /// more rows the disk cannot take only widens the loss window. A
    /// successful flush clears the state.
    pub fn submit(&mut self, batch: EventBatch) -> Result<(), IngestError> {
        if self.state == IngestState::Degraded
            || self.queued_rows + batch.weight() > self.config.high_water_mark
        {
            self.stats.batches_rejected += 1;
            crate::metrics::metrics().backpressure_rejections.inc();
            return Err(IngestError::Backpressure {
                queued_rows: self.queued_rows,
                high_water_mark: self.config.high_water_mark,
                batch,
            });
        }
        self.enqueue(batch);
        Ok(())
    }

    fn enqueue(&mut self, batch: EventBatch) {
        self.queued_rows += batch.weight();
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queued_rows);
        self.stats.batches_submitted += 1;
        self.queue.push_back(batch);
        crate::metrics::metrics()
            .queue_rows
            .set(self.queued_rows as i64);
    }

    /// Submits unconditionally, flushing when the shipment pushes the queue
    /// past the high-water mark.
    ///
    /// The batch is enqueued first, so it is never dropped — not on
    /// back-pressure (the queue may transiently exceed the mark within this
    /// call) and not when the flush dead-letters rows. A batch larger than
    /// the mark on its own is simply written through by the immediate
    /// flush. Returns the flush report when one happened.
    pub fn submit_with_flush(
        &mut self,
        batch: EventBatch,
    ) -> Result<Option<FlushReport>, IngestError> {
        self.enqueue(batch);
        if self.queued_rows > self.config.high_water_mark {
            return Ok(Some(self.flush()?));
        }
        Ok(None)
    }

    /// Drains the queue into the store under one write session, publishing
    /// one new reader-visible snapshot at the end (after the acknowledging
    /// fsync, on a durable ingestor).
    ///
    /// Per batch, in arrival order: clock samples are folded into the
    /// per-agent offset estimates first, then entities are appended, then
    /// events — each event's start/end shifted by its agent's current
    /// offset and routed to its `(day, agent group)` partition. Rollover
    /// into new partitions (e.g. when a batch crosses a day boundary) is
    /// collected in the report; new partitions inherit every secondary
    /// index, keeping live stores plan-identical to batch-loaded ones.
    ///
    /// Rows the storage layer rejects are **dead-lettered**: counted in
    /// [`FlushReport::failed_rows`] (with the first error kept) and
    /// skipped, so one malformed row can neither block the pipeline nor
    /// poison retries. The flush itself still drains the whole queue, the
    /// watermark only advances over rows that actually landed, and
    /// [`IngestStats`] stays consistent with the store's row counts.
    ///
    /// On a durable ingestor every row (and clock sample) is appended to
    /// the write-ahead log before its in-memory insert, and the log is
    /// fsynced before this returns — the returned report is the
    /// acknowledgement. A log I/O failure aborts the attempt: the
    /// unprocessed remainder of the queue (including the row that failed
    /// to log) is put back for a retry, and whatever was applied before
    /// the fault is folded into [`IngestStats`], so the stats stay
    /// consistent with the store's row counts even on the error path.
    /// What happens next depends on the fault:
    ///
    /// - **transient** log I/O faults are retried here, up to
    ///   [`RetryPolicy::max_retries`] times with exponential backoff,
    ///   before surfacing as [`IngestError::Durable`];
    /// - **out of space** (`ENOSPC`) transitions to
    ///   [`IngestState::Degraded`] and returns [`IngestError::Degraded`]
    ///   immediately — retrying into a full disk is just load; the next
    ///   successful flush (after space is freed) returns to healthy;
    /// - a **poisoned log handle** (failed fsync; see
    ///   [`DurableStore::is_poisoned`]) is fatal for this ingestor:
    ///   [`IngestState::Poisoned`], no retry — the acknowledgement channel
    ///   itself can no longer be trusted, reopen the directory instead.
    pub fn flush(&mut self) -> Result<FlushReport, IngestError> {
        let mut total = FlushReport::default();
        let mut attempt: u32 = 0;
        loop {
            match self.flush_attempt(&mut total) {
                Ok(()) => {
                    if self.state == IngestState::Degraded {
                        self.set_state(IngestState::Healthy);
                    }
                    return Ok(total);
                }
                Err(e) => {
                    let poisoned = match &self.backend {
                        Backend::Durable(d) => d.is_poisoned(),
                        Backend::Plain(_) => false,
                    };
                    if poisoned {
                        self.set_state(IngestState::Poisoned);
                        return Err(IngestError::Durable(e));
                    }
                    match &e {
                        PersistError::Io(io) if io.kind() == io::ErrorKind::StorageFull => {
                            self.set_state(IngestState::Degraded);
                            return Err(IngestError::Degraded {
                                queued_rows: self.queued_rows,
                                cause: e,
                            });
                        }
                        PersistError::Io(_) if attempt < self.config.retry.max_retries => {
                            attempt += 1;
                            self.stats.flush_retries += 1;
                            crate::metrics::metrics().flush_retries.inc();
                            let delay = self.config.retry.delay(attempt);
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                        }
                        _ => return Err(IngestError::Durable(e)),
                    }
                }
            }
        }
    }

    /// One attempt at draining the queue: the write session, the single
    /// requeue point, stats folding, and dead-letter retention. Progress
    /// (applied batches, dead letters) is merged into `total` whether the
    /// attempt succeeds or not.
    fn flush_attempt(&mut self, total: &mut FlushReport) -> Result<(), PersistError> {
        let started = std::time::Instant::now();
        let mut report = FlushReport::default();
        let mut dead = Vec::new();
        let mut failure: Option<PersistError> = None;
        let mut session = match &mut self.backend {
            Backend::Plain(shared) => Session::Plain(shared.write()),
            Backend::Durable(d) => Session::Durable(d.begin()),
        };
        while let Some(batch) = self.queue.pop_front() {
            self.queued_rows -= batch.weight();
            match apply_batch(
                &mut session,
                &mut self.sync,
                &mut self.watermark,
                &mut report,
                &mut dead,
                batch,
            ) {
                Ok(()) => report.batches += 1,
                // The single requeue point — durability (log I/O) failures
                // only. Dead-lettered rows never reach here: `apply_batch`
                // counts and skips them. The unprocessed remainder goes
                // back to the queue head for a retry after the fault
                // clears.
                Err((e, remainder)) => {
                    failure = Some(e);
                    self.queued_rows += remainder.weight();
                    self.queue.push_front(remainder);
                    break;
                }
            }
        }

        match session {
            Session::Plain(store) => {
                if failure.is_none() {
                    report.stamp = store.stamp();
                }
                // Dropping the plain session publishes: the whole flush
                // becomes visible to readers atomically, never mid-drain.
            }
            Session::Durable(w) => {
                if failure.is_none() {
                    // The acknowledgement point: fsync the log, then
                    // publish — readers can never see unacknowledged rows.
                    match w.commit() {
                        Ok(stamp) => report.stamp = stamp,
                        Err(e) => failure = Some(e),
                    }
                }
                // On failure the session drops uncommitted and
                // unpublished: nothing past the fault was acknowledged,
                // and readers keep the last acknowledged snapshot.
            }
        }

        // Applied rows are in the store either way; keep the stats honest.
        self.stats.batches_applied += report.batches as u64;
        self.stats.events_applied += report.events as u64;
        self.stats.entities_applied += report.entities as u64;
        self.stats.out_of_order_events += report.out_of_order_events as u64;
        self.stats.rollovers += report.new_partitions.len() as u64;
        self.stats.failed_rows += report.failed_rows as u64;
        let m = crate::metrics::metrics();
        m.queue_rows.set(self.queued_rows as i64);
        m.flush_micros.record_duration(started.elapsed());
        m.flush_rows
            .record((report.events + report.entities) as u64);
        m.dead_letter_rows.add(report.failed_rows as u64);
        for letter in dead {
            if self.dead_letters.len() >= DEAD_LETTER_CAP {
                self.dead_letters.pop_front();
                self.stats.dead_letters_dropped += 1;
            }
            self.dead_letters.push_back(letter);
        }
        m.dead_letter_queue_depth
            .set(self.dead_letters.len() as i64);
        total.merge(report);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Flushes, then snapshots the store and truncates the write-ahead log
    /// (carrying the current clock-offset estimates into the fresh log).
    /// The snapshot boundary: recovery afterwards loads the snapshot and
    /// replays only post-checkpoint records. Returns the snapshot path, or
    /// `None` on a non-durable ingestor (which has nothing to checkpoint).
    pub fn checkpoint(&mut self) -> Result<Option<PathBuf>, IngestError> {
        self.flush()?;
        match &mut self.backend {
            Backend::Plain(_) => Ok(None),
            Backend::Durable(d) => Ok(Some(d.checkpoint_with(&self.sync)?)),
        }
    }

    /// Flushes whatever is queued and hands back the shared store handle
    /// plus final statistics. On a durable ingestor the log is fsynced (by
    /// the flush) but deliberately *not* checkpointed — reopening the
    /// directory replays the tail; call [`Ingestor::checkpoint`] first for
    /// a snapshot-only handoff.
    pub fn finish(mut self) -> Result<(SharedStore, IngestStats), IngestError> {
        self.flush()?;
        let shared = match self.backend {
            Backend::Plain(s) => s,
            Backend::Durable(d) => d.into_shared(),
        };
        Ok((shared, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{AgentId, Entity, EntityKind, Event, OpType};
    use aiql_storage::timesync::ClockSample;

    fn event(id: u64, agent: u32, t: i64) -> Event {
        Event::new(
            id.into(),
            AgentId(agent),
            1.into(),
            OpType::Write,
            2.into(),
            EntityKind::File,
            Timestamp(t),
        )
    }

    fn batch_of(events: Vec<Event>) -> EventBatch {
        EventBatch {
            events,
            ..EventBatch::default()
        }
    }

    const DAY: i64 = aiql_rdb::partition::NANOS_PER_DAY;

    #[test]
    fn backpressure_rejects_then_flush_recovers() {
        let cfg = IngestConfig::live().with_high_water_mark(3);
        let mut ing = Ingestor::new(cfg).unwrap();
        ing.submit(batch_of(vec![event(1, 0, 0), event(2, 0, 1)]))
            .unwrap();
        let err = ing
            .submit(batch_of(vec![event(3, 0, 2), event(4, 0, 3)]))
            .unwrap_err();
        // The rejected batch comes back untouched for resubmission.
        let rejected = match err {
            IngestError::Backpressure {
                batch,
                queued_rows: 2,
                high_water_mark: 3,
            } => batch,
            other => panic!("unexpected error: {other:?}"),
        };
        assert_eq!(rejected.event_count(), 2);
        assert_eq!(ing.stats().batches_rejected, 1);
        assert_eq!(ing.queued_rows(), 2);

        ing.flush().unwrap();
        assert_eq!(ing.queued_rows(), 0);
        ing.submit(rejected).unwrap();
        let report = ing.flush().unwrap();
        assert_eq!(report.events, 2);
        assert_eq!(ing.shared().read().event_count(), 4);
        assert_eq!(ing.stats().max_queue_depth, 2);
    }

    #[test]
    fn submit_with_flush_auto_drains() {
        let mut ing = Ingestor::new(IngestConfig::live().with_high_water_mark(2)).unwrap();
        assert!(ing
            .submit_with_flush(batch_of(vec![event(1, 0, 0), event(2, 0, 1)]))
            .unwrap()
            .is_none());
        let report = ing
            .submit_with_flush(batch_of(vec![event(3, 0, 2)]))
            .unwrap()
            .expect("crossing the mark flushes everything queued");
        assert_eq!(report.events, 3);
        assert_eq!(ing.queued_rows(), 0);
    }

    #[test]
    fn oversized_batch_writes_through() {
        // A single shipment larger than the high-water mark must still land
        // (the mark bounds buffering, not shipment size).
        let mut ing = Ingestor::new(IngestConfig::live().with_high_water_mark(2)).unwrap();
        ing.submit(batch_of(vec![event(1, 0, 0)])).unwrap();
        let big = batch_of(vec![event(2, 0, 1), event(3, 0, 2), event(4, 0, 3)]);
        assert!(matches!(
            ing.submit(big.clone()),
            Err(IngestError::Backpressure { .. })
        ));
        let report = ing
            .submit_with_flush(big)
            .unwrap()
            .expect("write-through flush");
        assert_eq!(report.events, 4, "queued + oversized batch both land");
        assert_eq!(report.batches, 2);
        assert_eq!(ing.queued_rows(), 0);
        assert_eq!(ing.shared().read().event_count(), 4);
    }

    #[test]
    fn entity_only_batches_count_against_the_mark() {
        let mut ing = Ingestor::new(IngestConfig::live().with_high_water_mark(3)).unwrap();
        let entities = |lo: u64, n: u64| EventBatch {
            entities: (lo..lo + n)
                .map(|i| Entity::file(i.into(), AgentId(0), format!("/f{i}")))
                .collect(),
            ..EventBatch::default()
        };
        ing.submit(entities(1, 2)).unwrap();
        assert_eq!(ing.queued_rows(), 2, "entities weigh in");
        assert!(matches!(
            ing.submit(entities(10, 2)),
            Err(IngestError::Backpressure { .. })
        ));
        ing.flush().unwrap();
        ing.submit(entities(10, 2)).unwrap();
        ing.flush().unwrap();
        assert_eq!(ing.shared().read().entity_count(), 4);
    }

    #[test]
    fn malformed_rows_are_dead_lettered_not_poisonous() {
        let mut ing = Ingestor::new(IngestConfig::live()).unwrap();
        // A process entity with a string where the schema wants an Int.
        let poison = Entity::process(1.into(), AgentId(0), "p", 1).with_attr("pid", "not-a-pid");
        let mut b = EventBatch::new();
        b.add_entity(poison);
        b.add_entity(Entity::file(2.into(), AgentId(0), "/fine"));
        b.add_event(event(1, 0, 100));
        ing.submit(b).unwrap();

        let report = ing.flush().unwrap();
        assert_eq!(report.failed_rows, 1);
        assert!(matches!(
            report.first_error,
            Some(aiql_rdb::RdbError::SchemaMismatch(_))
        ));
        // Everything else in the batch landed; nothing is stuck in the queue.
        assert_eq!(report.entities, 1);
        assert_eq!(report.events, 1);
        assert_eq!(ing.queued_rows(), 0);
        assert_eq!(ing.stats().failed_rows, 1);
        let shared = ing.shared();
        let store = shared.read();
        assert_eq!((store.entity_count(), store.event_count()), (1, 1));

        // The store's stats stay consistent with its contents.
        assert_eq!(ing.stats().events_applied, 1);
        assert_eq!(ing.stats().entities_applied, 1);
    }

    #[test]
    fn timesync_corrects_on_the_fly() {
        let mut ing = Ingestor::new(IngestConfig::live()).unwrap();
        // Agent 1's clock runs 1000 ns behind the server.
        let mut b = EventBatch::new();
        b.add_clock_sample(
            AgentId(1),
            ClockSample {
                agent_time: 0,
                server_time: 1_000,
            },
        );
        b.add_event(event(1, 1, 500));
        b.add_event(event(2, 2, 1_400)); // agent 2: no samples, no shift
        ing.submit(b).unwrap();
        ing.flush().unwrap();

        let shared = ing.shared();
        let store = shared.read();
        let mut scanned = 0;
        let rows = store.scan_events(&[], &aiql_rdb::Prune::all(), &mut scanned);
        let mut starts: Vec<i64> = rows
            .iter()
            .map(|r| r[aiql_storage::schema::ev::START].as_int().unwrap())
            .collect();
        starts.sort();
        assert_eq!(starts, vec![1_400, 1_500], "agent 1 shifted by +1000");
        assert_eq!(ing.watermark(), Some(Timestamp(1_500)));
    }

    #[test]
    fn day_boundary_rollover_is_reported() {
        let mut ing = Ingestor::new(IngestConfig::live()).unwrap();
        // One batch spanning the day-0 → day-1 boundary for agent 0.
        ing.submit(batch_of(vec![event(1, 0, DAY - 10), event(2, 0, DAY + 10)]))
            .unwrap();
        let report = ing.flush().unwrap();
        assert_eq!(report.new_partitions, vec![(0, 0), (1, 0)]);
        assert_eq!(ing.stats().rollovers, 2);

        // Same days again: no new partitions.
        ing.submit(batch_of(vec![event(3, 0, DAY - 5), event(4, 0, DAY + 5)]))
            .unwrap();
        assert!(ing.flush().unwrap().new_partitions.is_empty());

        // A different agent group rolls over on both days.
        ing.submit(batch_of(vec![event(5, 9, DAY - 5), event(6, 9, DAY + 5)]))
            .unwrap();
        let report = ing.flush().unwrap();
        assert_eq!(report.new_partitions, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn out_of_order_counted_not_lost() {
        let mut ing = Ingestor::new(IngestConfig::live()).unwrap();
        ing.submit(batch_of(vec![event(1, 0, 5_000), event(2, 0, 1_000)]))
            .unwrap();
        let report = ing.flush().unwrap();
        assert_eq!(report.out_of_order_events, 1);
        assert_eq!(report.events, 2);
        assert_eq!(ing.watermark(), Some(Timestamp(5_000)));
        assert_eq!(ing.shared().read().event_count(), 2);
    }

    #[test]
    fn durable_ingestor_survives_restart_mid_stream() {
        let dir = std::env::temp_dir().join(format!("aiql-ingest-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = IngestConfig::live();

        // First life: clock sample for agent 1, a checkpoint, then more
        // events that stay in the WAL tail.
        let (mut ing, report) = Ingestor::durable(cfg, &dir).unwrap();
        assert!(report.is_none(), "fresh directory");
        let mut b = EventBatch::new();
        b.add_clock_sample(
            AgentId(1),
            ClockSample {
                agent_time: 0,
                server_time: 1_000,
            },
        );
        b.add_entity(Entity::file(50.into(), AgentId(1), "/f"));
        b.add_event(event(1, 1, 500)); // corrected to 1_500
        ing.submit(b).unwrap();
        ing.checkpoint().unwrap().expect("durable checkpoint");
        ing.submit(batch_of(vec![event(2, 1, 2_000), event(3, 2, 100)]))
            .unwrap();
        ing.flush().unwrap();
        let watermark_before = ing.watermark();
        drop(ing); // crash: no final checkpoint

        // Second life: recovery restores rows, sync state, and watermark.
        let (mut ing, report) = Ingestor::durable(cfg, &dir).unwrap();
        let report = report.expect("recovered");
        assert_eq!(report.snapshot_events, 1);
        assert_eq!(report.replayed_events, 2);
        assert_eq!(ing.watermark(), watermark_before);
        {
            let shared = ing.shared();
            let store = shared.read();
            assert_eq!(store.event_count(), 3);
            assert_eq!(store.entity_count(), 1);
        }
        // The pre-checkpoint clock sample still corrects agent 1's stamps.
        ing.submit(batch_of(vec![event(4, 1, 9_000)])).unwrap();
        ing.flush().unwrap();
        assert_eq!(ing.watermark(), Some(Timestamp(10_000)), "offset +1000");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_matches_batch_counts_and_partitions() {
        use aiql_model::Dataset;
        let mut data = Dataset::new();
        let a = AgentId(2);
        data.add_entity(Entity::process(1.into(), a, "p", 1));
        data.add_entity(Entity::file(2.into(), a, "/f"));
        for i in 0..20 {
            data.add_event(event(100 + i, 2, i as i64 * (DAY / 7)));
        }
        let batch_store = EventStore::ingest(&data, StoreConfig::partitioned()).unwrap();

        let mut ing = Ingestor::new(IngestConfig::live()).unwrap();
        // Stream it in 3 shipments, entities first.
        let mut first = EventBatch::new();
        first.entities = data.entities.clone();
        first.events = data.events[..7].to_vec();
        ing.submit(first).unwrap();
        ing.submit(batch_of(data.events[7..15].to_vec())).unwrap();
        ing.submit(batch_of(data.events[15..].to_vec())).unwrap();
        let (shared, stats) = ing.finish().unwrap();

        let live = shared.read();
        assert_eq!(live.event_count(), batch_store.event_count());
        assert_eq!(live.entity_count(), batch_store.entity_count());
        assert_eq!(
            live.events_partitioned().unwrap().partition_count(),
            batch_store.events_partitioned().unwrap().partition_count(),
        );
        assert_eq!(
            stats.rollovers as usize,
            live.events_partitioned().unwrap().partition_count()
        );
        assert_eq!(stats.batches_applied, 3);
    }
}
