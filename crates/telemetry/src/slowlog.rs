//! A bounded, process-wide slow-query log.
//!
//! The engine's session layer measures every statement execution and
//! [`SlowQueryLog::record`]s the ones that ran longer than the
//! configurable threshold. Entries keep everything an operator needs to
//! understand the outlier after the fact: the source text, the bound
//! parameters, the elapsed time, and the rendered scan profile the
//! `EXPLAIN` machinery produced. The log is a fixed-capacity ring —
//! the newest [`SLOW_LOG_CAPACITY`] slow queries win, old ones fall off.
//!
//! # Examples
//!
//! ```
//! use aiql_telemetry::slowlog::{self, SlowQueryEntry};
//!
//! let log = slowlog::SlowQueryLog::new(8, 1_000);
//! log.record(SlowQueryEntry {
//!     source: "proc p read file f return p, f".into(),
//!     params: "(none)".into(),
//!     elapsed_micros: 2_500,
//!     rows: 4,
//!     profile: "seq-scan 1000 rows".into(),
//! });
//! assert_eq!(log.entries().len(), 1);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many entries the process-wide log retains.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// Default slowness threshold: 100 ms.
pub const DEFAULT_THRESHOLD_MICROS: u64 = 100_000;

/// One query that exceeded the slowness threshold.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The statement source text.
    pub source: String,
    /// Rendered bound parameters (`(none)` for literal statements).
    pub params: String,
    /// Wall-clock execution time, microseconds.
    pub elapsed_micros: u64,
    /// Result rows produced.
    pub rows: u64,
    /// Rendered scan profile (access paths, partitions pruned, rows
    /// scanned) — the `EXPLAIN` view of how the time was spent.
    pub profile: String,
}

/// A bounded ring buffer of [`SlowQueryEntry`]s with a settable
/// threshold. Use [`global`] for the process-wide instance.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_micros: AtomicU64,
    entries: Mutex<VecDeque<SlowQueryEntry>>,
    capacity: usize,
}

/// The process-wide slow-query log.
pub fn global() -> &'static SlowQueryLog {
    static GLOBAL: OnceLock<SlowQueryLog> = OnceLock::new();
    GLOBAL.get_or_init(|| SlowQueryLog::new(SLOW_LOG_CAPACITY, DEFAULT_THRESHOLD_MICROS))
}

impl SlowQueryLog {
    /// A log retaining at most `capacity` entries, flagging executions
    /// at or above `threshold_micros`.
    pub fn new(capacity: usize, threshold_micros: u64) -> SlowQueryLog {
        SlowQueryLog {
            threshold_micros: AtomicU64::new(threshold_micros),
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// The current slowness threshold in microseconds.
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Sets the slowness threshold (applies to future executions).
    pub fn set_threshold_micros(&self, micros: u64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// Whether an execution that took `micros` should be logged.
    pub fn is_slow(&self, micros: u64) -> bool {
        micros >= self.threshold_micros()
    }

    /// Appends an entry, evicting the oldest at capacity. Callers check
    /// [`SlowQueryLog::is_slow`] first so fast queries never take the lock.
    pub fn record(&self, entry: SlowQueryEntry) {
        let mut entries = self.entries.lock().expect("slow-query log poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.entries
            .lock()
            .expect("slow-query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow-query log poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained entry.
    pub fn clear(&self) {
        self.entries
            .lock()
            .expect("slow-query log poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            source: format!("q{tag}"),
            params: "(none)".into(),
            elapsed_micros: tag,
            rows: 0,
            profile: String::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowQueryLog::new(3, 0);
        for i in 0..5 {
            log.record(entry(i));
        }
        let sources: Vec<String> = log.entries().into_iter().map(|e| e.source).collect();
        assert_eq!(sources, ["q2", "q3", "q4"]);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn threshold_gates_slowness() {
        let log = SlowQueryLog::new(4, 1_000);
        assert!(!log.is_slow(999));
        assert!(log.is_slow(1_000));
        log.set_threshold_micros(10);
        assert!(log.is_slow(10));
    }
}
