//! Process-wide observability for the AIQL reproduction: metrics, query
//! trace spans, and a slow-query log.
//!
//! The paper pitches *efficient attack investigation at scale*; this crate
//! is how the reproduction watches itself live up to that. It is
//! hand-rolled (the build is offline — no `prometheus`, no `tracing`) and
//! deliberately small:
//!
//! - [`Counter`] / [`Gauge`] — lock-free atomics behind cheap cloneable
//!   handles,
//! - [`Histogram`] — log-bucketed (powers of two) with `p50`/`p95`/`p99`/
//!   `max` export, safe to record from any number of threads,
//! - [`Registry`] — a process-wide named registry ([`global`]); every layer
//!   (`aiql-wal`, `aiql-ingest`, `aiql-storage`, `aiql-engine`) resolves
//!   its handles once at startup and records wait-free afterwards,
//! - [`trace`] — structured spans assembling a per-query phase tree
//!   (lex/parse/analyze/plan/scan-per-pattern/join/score),
//! - [`slowlog`] — a bounded ring buffer of queries that exceeded a
//!   latency threshold, with source, bound params, and scan profile.
//!
//! Metric names follow `aiql_<layer>_<what>_<unit>`: durations are
//! histograms in microseconds (`_micros`), sizes in bytes (`_bytes`),
//! monotone event counts are `_total` counters, and instantaneous levels
//! are gauges. The registry exports two ways: a Prometheus-style text
//! exposition ([`RegistrySnapshot::to_prometheus`]) and a JSON object
//! ([`RegistrySnapshot::to_json`]) that the bench harness embeds into
//! every `BENCH_*.json`. The full catalogue — every registered metric with
//! its unit, layer, and what a regression in it means — is
//! `docs/METRICS.md` at the repository root.
//!
//! # Examples
//!
//! ```
//! let reg = aiql_telemetry::Registry::new();
//! let flushes = reg.counter("aiql_ingest_flushes_total");
//! let fsync = reg.histogram("aiql_wal_fsync_micros");
//! flushes.inc();
//! fsync.record(250);
//! fsync.record(900);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("aiql_ingest_flushes_total"), Some(1));
//! assert_eq!(snap.histogram("aiql_wal_fsync_micros").unwrap().count, 2);
//! ```

pub mod slowlog;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log buckets in a [`Histogram`]: one for zero, one per power
/// of two up to `2^62`, and a final catch-all.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic, so a handle resolved once from the [`Registry`] records
/// wait-free forever after.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level (queue depth, open cursors). Signed so that
/// concurrent decrements can transiently cross zero without wrapping.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A log-bucketed histogram of non-negative values (latencies in
/// microseconds, sizes in bytes).
///
/// Bucket 0 holds exact zeros; bucket `i` (for `1 <= i < 63`) holds values
/// in `[2^(i-1), 2^i - 1]`; bucket 63 holds everything from `2^62` up.
/// Recording is three relaxed atomic operations (bucket, sum, max) — safe
/// and cheap from any thread. Quantiles are estimated at snapshot time by
/// linear interpolation inside the containing bucket, clamped to the
/// largest value actually observed.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// The bucket index a value lands in.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        i if i < HISTOGRAM_BUCKETS - 1 => (1 << (i - 1), (1 << i) - 1),
        _ => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
    }
}

impl Histogram {
    /// A histogram not attached to any registry (useful in tests).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.0.sum.load(Ordering::Relaxed),
            max: self.0.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.sum.store(0, Ordering::Relaxed);
        self.0.max.store(0, Ordering::Relaxed);
    }
}

/// An immutable copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts (see [`Histogram`] for bounds).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the bucket
    /// holding the rank-`ceil(q * count)` observation and interpolating
    /// linearly between the bucket's bounds; the estimate never exceeds
    /// the recorded maximum. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                let hi = hi.min(self.max);
                let within = (rank - seen) as f64 / n as f64;
                return (lo as f64 + within * (hi.saturating_sub(lo)) as f64).min(self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Folds `other` into `self` bucket-by-bucket. Because recording is a
    /// per-bucket add, merging two histograms that between them saw a set
    /// of values is equivalent to one histogram that saw all of them.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The distribution's change since an `earlier` snapshot of the same
    /// metric: counts, sums, and buckets subtract (saturating, so a reset
    /// in between degrades gracefully to the later snapshot). The maximum
    /// is not invertible, so the later snapshot's `max` is kept — an upper
    /// bound for the interval.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; benches and tests may build private ones.
///
/// Handle resolution (`counter`/`gauge`/`histogram`) takes a short lock
/// and is meant to happen once per call site — the returned handles record
/// lock-free. Resolving an existing name returns a handle to the *same*
/// metric; resolving it as a different kind panics (a programming error:
/// names are compile-time constants throughout the workspace).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-wide registry every AIQL layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn resolve<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        pick: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let metric = metrics.entry(name.to_string()).or_insert_with(make).clone();
        drop(metrics);
        match pick(&metric) {
            Some(t) => t,
            None => panic!("telemetry metric `{name}` is a {}", metric.kind()),
        }
    }

    /// The counter named `name`, created on first resolution.
    pub fn counter(&self, name: &str) -> Counter {
        self.resolve(
            name,
            || Metric::Counter(Counter::new()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, created on first resolution.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.resolve(
            name,
            || Metric::Gauge(Gauge::new()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, created on first resolution.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.resolve(
            name,
            || Metric::Histogram(Histogram::new()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A consistent point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let mut snap = RegistrySnapshot::default();
        for (name, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }

    /// Zeroes every registered metric in place (handles stay valid).
    /// Benches call this at experiment start so the snapshot they embed
    /// covers exactly their own run.
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("telemetry registry poisoned");
        for m in metrics.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// A point-in-time copy of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus-style text exposition: counters and gauges as plain
    /// samples, histograms as summaries with `quantile` labels plus
    /// `_sum`, `_count`, and `_max` samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for q in [0.5, 0.95, 0.99] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{q}\"}} {:.1}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n{name}_max {}\n",
                h.sum, h.count, h.max
            ));
        }
        out
    }

    /// One JSON object with `counters`, `gauges`, and `histograms` keys;
    /// each histogram carries `count`/`sum`/`max`/`mean`/`p50`/`p95`/`p99`.
    /// This is the `"telemetry"` section the bench harness embeds into
    /// every `BENCH_*.json`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{n}\": {v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| format!("\"{n}\": {v}"))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(n, h)| {
                format!(
                    "\"{n}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}, \
                     \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99)
                )
            })
            .collect();
        format!(
            "{{\"counters\": {{{}}}, \"gauges\": {{{}}}, \"histograms\": {{{}}}}}",
            counters.join(", "),
            gauges.join(", "),
            hists.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("g");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("g").get(), 3);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.histogram("x");
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Zero sits alone in bucket 0.
        assert_eq!(bucket_index(0), 0);
        // Each bucket i >= 1 covers [2^(i-1), 2^i - 1].
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i > 1 {
                assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
            }
        }
        // The top bucket absorbs everything from 2^62 up.
        assert_eq!(bucket_index(1 << 62), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1, "one zero");
        assert_eq!(s.buckets[1], 1, "1");
        assert_eq!(s.buckets[2], 2, "2 and 3");
        assert_eq!(s.buckets[3], 1, "4");
        assert_eq!(s.buckets[10], 1, "1000 in [512, 1023]");
    }

    #[test]
    fn quantiles_interpolate_and_clamp_to_max() {
        let h = Histogram::new();
        // 100 observations uniform in [512, 1023]: all in one bucket.
        for i in 0..100 {
            h.record(512 + i * 5);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        // Interpolated halfway through [512, max=1007].
        assert!((700.0..780.0).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0) <= s.max as f64);
        let p0 = s.quantile(0.0);
        assert!((512.0..520.0).contains(&p0), "rank clamps to rank 1: {p0}");
        // Empty histogram: all quantiles are zero.
        assert_eq!(Histogram::new().snapshot().quantile(0.99), 0.0);
        // Single observation: every quantile is that value.
        let one = Histogram::new();
        one.record(42);
        assert_eq!(one.snapshot().quantile(0.5), 42.0);
        assert_eq!(one.snapshot().quantile(0.99), 42.0);
    }

    #[test]
    fn quantile_walks_across_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8, 15]
        }
        for _ in 0..10 {
            h.record(10_000); // bucket [8192, 16383]
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) <= 15.0);
        assert!(s.quantile(0.95) >= 8192.0);
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 5, 9, 100] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 5, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn reset_zeroes_in_place() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.inc();
        h.record(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        assert_eq!(reg.snapshot().counter("c"), Some(1), "handles stay live");
    }

    #[test]
    fn exports_render_every_metric() {
        let reg = Registry::new();
        reg.counter("aiql_test_total").add(3);
        reg.gauge("aiql_test_depth").set(-2);
        reg.histogram("aiql_test_micros").record(128);
        let snap = reg.snapshot();
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE aiql_test_total counter"));
        assert!(prom.contains("aiql_test_total 3"));
        assert!(prom.contains("aiql_test_depth -2"));
        assert!(prom.contains("aiql_test_micros_count 1"));
        assert!(prom.contains("quantile=\"0.99\""));
        let json = snap.to_json();
        assert!(json.contains("\"aiql_test_total\": 3"));
        assert!(json.contains("\"aiql_test_depth\": -2"));
        assert!(json.contains("\"count\": 1"));
    }
}
