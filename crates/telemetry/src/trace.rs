//! Structured trace spans: a per-thread collector that assembles one
//! phase tree per traced operation.
//!
//! The engine's session layer calls [`begin`] before compiling or
//! executing a statement, the layers underneath open [`span`]s around
//! their phases (lex, parse, analyze, plan, one `scan:<pattern>` per
//! event pattern, join, score), and [`finish`] returns the assembled
//! [`SpanNode`] tree. Collection is per-thread and explicitly armed:
//! when no collector is active, [`span`] is one thread-local check and
//! records nothing, so instrumented code on un-traced paths (bulk
//! ingestion, parallel partition workers) pays effectively nothing.
//!
//! # Examples
//!
//! ```
//! use aiql_telemetry::trace;
//!
//! trace::begin("execute");
//! {
//!     let _plan = trace::span("plan");
//!     let _scan = trace::span("scan:evt1");
//! }
//! let tree = trace::finish().unwrap();
//! assert_eq!(tree.name, "execute");
//! assert_eq!(tree.children[0].name, "plan");
//! assert_eq!(tree.children[0].children[0].name, "scan:evt1");
//! ```

use std::cell::RefCell;
use std::time::Instant;

/// One node of a finished phase tree: a named phase, how long it took,
/// and the phases nested inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name (`parse`, `plan`, `scan:evt1`, ...).
    pub name: String,
    /// Wall-clock time spent in the phase, microseconds.
    pub micros: u64,
    /// Phases opened while this one was the innermost active span.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The first direct child named `name`, if any.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Direct children whose name starts with `prefix` (e.g. `scan:`).
    pub fn children_with_prefix(&self, prefix: &str) -> Vec<&SpanNode> {
        self.children
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .collect()
    }

    /// Renders the tree as an indented text listing, one phase per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{} {:.1} ms\n",
            "",
            self.name,
            self.micros as f64 / 1e3,
            indent = depth * 2
        ));
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

struct OpenSpan {
    name: String,
    start: Instant,
    children: Vec<SpanNode>,
}

thread_local! {
    /// The active collector: a stack of open spans, bottom = root.
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// Starts collecting a phase tree rooted at `name` on this thread,
/// discarding any unfinished previous collection.
pub fn begin(name: &str) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.clear();
        stack.push(OpenSpan {
            name: name.to_string(),
            start: Instant::now(),
            children: Vec::new(),
        });
    });
}

/// Ends collection and returns the assembled tree, or `None` when
/// [`begin`] was never called on this thread. Spans still open (guards
/// not yet dropped) are folded into their parents as-is.
pub fn finish() -> Option<SpanNode> {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let mut node: Option<SpanNode> = None;
        while let Some(open) = stack.pop() {
            let mut closed = SpanNode {
                micros: open.start.elapsed().as_micros() as u64,
                name: open.name,
                children: open.children,
            };
            if let Some(child) = node.take() {
                closed.children.push(child);
            }
            node = Some(closed);
        }
        node
    })
}

/// Whether a collection is active on this thread.
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

/// Opens a phase span; the phase closes (and its elapsed time is
/// recorded into the tree) when the returned guard drops. A no-op when
/// no collection is active on this thread.
pub fn span(name: &str) -> SpanGuard {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if stack.is_empty() {
            return SpanGuard { armed: false };
        }
        stack.push(OpenSpan {
            name: name.to_string(),
            start: Instant::now(),
            children: Vec::new(),
        });
        SpanGuard { armed: true }
    })
}

/// A guard for one open phase; closing happens on drop, so phases nest
/// with lexical scope.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // The root (index 0) belongs to begin/finish; a guard only ever
            // closes a span it opened itself.
            if stack.len() < 2 {
                return;
            }
            let open = stack.pop().expect("span stack underflow");
            let closed = SpanNode {
                micros: open.start.elapsed().as_micros() as u64,
                name: open.name,
                children: open.children,
            };
            stack
                .last_mut()
                .expect("parent span present")
                .children
                .push(closed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_noops_without_begin() {
        assert!(!active());
        {
            let _s = span("ignored");
        }
        assert!(finish().is_none());
    }

    #[test]
    fn tree_nests_with_lexical_scope() {
        begin("root");
        {
            let _a = span("a");
            {
                let _b = span("b");
            }
            let _c = span("c");
        }
        let _d = span("d");
        drop(_d);
        let tree = finish().unwrap();
        assert_eq!(tree.name, "root");
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "d"]);
        let a = tree.child("a").unwrap();
        let inner: Vec<&str> = a.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(inner, ["b", "c"]);
        assert!(tree.render().contains("  a "));
    }

    #[test]
    fn unfinished_spans_fold_into_parents() {
        begin("root");
        let _open = span("still-open");
        let tree = finish().unwrap();
        assert_eq!(tree.children[0].name, "still-open");
        // The leaked guard drops after finish; with no collector it is inert.
        drop(_open);
        assert!(!active());
    }

    #[test]
    fn begin_discards_previous_collection() {
        begin("first");
        let _s = span("x");
        begin("second");
        let tree = finish().unwrap();
        assert_eq!(tree.name, "second");
        assert!(tree.children.is_empty());
    }

    #[test]
    fn prefix_lookup_finds_scans() {
        begin("execute");
        {
            let _s1 = span("scan:evt1");
        }
        {
            let _s2 = span("scan:evt2");
        }
        {
            let _j = span("join");
        }
        let tree = finish().unwrap();
        assert_eq!(tree.children_with_prefix("scan:").len(), 2);
        assert!(tree.child("join").is_some());
    }
}
