//! The fault layer's handles into the process-wide telemetry registry.

use aiql_telemetry::{global, Counter};
use std::sync::OnceLock;

pub(crate) struct FaultMetrics {
    /// `aiql_fault_injected_total` — faults an armed plan actually fired
    /// (crossings that returned an error instead of proceeding).
    pub injected: Counter,
    /// `aiql_fault_crashes_total` — [`crate::FaultKind::Crash`] faults
    /// fired (each puts the process into fail-everything mode).
    pub crashes: Counter,
}

pub(crate) fn metrics() -> &'static FaultMetrics {
    static METRICS: OnceLock<FaultMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FaultMetrics {
        injected: global().counter("aiql_fault_injected_total"),
        crashes: global().counter("aiql_fault_crashes_total"),
    })
}
