//! Deterministic fault injection under the storage stack.
//!
//! Every filesystem operation the durable-ingest path performs — segment
//! opens, appends, fsyncs, snapshot writes, renames, removals, directory
//! syncs — crosses a named **faultpoint** on its way to the kernel
//! ([`FaultFile`] for handles, [`fs`] for one-shot operations). When
//! injection is disarmed (the production state, and the default) a
//! crossing costs one relaxed atomic load and nothing else: no allocation,
//! no lock, no branch the optimizer cannot fold.
//!
//! Tests and benches arm a [`FaultPlan`] through the exclusive
//! [`Controller`] ([`control`]): a scriptable list of rules, each failing
//! the *N*th crossing of a matching point with a chosen [`FaultKind`] —
//! an errno ([`FaultKind::Errno`], e.g. `EIO` or `ENOSPC`/
//! [`std::io::ErrorKind::StorageFull`]), a short write that leaves torn
//! bytes behind ([`FaultKind::PartialWrite`]), an fsync that *loses the
//! dirty pages* ([`FaultKind::FsyncLoss`] — the fsyncgate failure mode:
//! the error is reported once and the unsynced bytes are gone), or a
//! process **crash** ([`FaultKind::Crash`]) after which every subsequent
//! operation fails, as it would for a dead process.
//!
//! The controller can also **trace** a run — record every faultpoint
//! crossed, in order — which is how the chaos harness in `tests/chaos.rs`
//! enumerates the sites of a workload before re-running it with a fault
//! injected at each one. [`SmallRng`] and [`FaultPlan::seeded`] build
//! reproducible randomized plans from a printed seed.
//!
//! The whole crate is standard-library only (plus the workspace's
//! dependency-free `aiql-telemetry` handles, which count injected faults
//! into the process-wide registry).

mod file;
mod metrics;
pub mod testing;

pub use file::{fs, DirSync, FaultFile};

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What an armed rule injects at a matching crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with this `errno`-style kind and does not
    /// happen. `ErrorKind::StorageFull` is `ENOSPC`; `ErrorKind::Other`
    /// reads as `EIO`.
    Errno(io::ErrorKind),
    /// A short write: only a prefix of the buffer reaches the file before
    /// the error — the torn-frame case the WAL's repair path defends
    /// against. On non-write operations it degrades to an `EIO`.
    PartialWrite,
    /// The fsync reports failure **and** the dirty (unsynced) bytes are
    /// discarded — the kernel dropped the pages and cleared the error
    /// flag, so a retried fsync would lie. On non-sync operations it
    /// degrades to an `EIO`.
    FsyncLoss,
    /// The process "dies" here: this operation fails and **every**
    /// subsequent crossing fails too, until the plan is disarmed. Models
    /// power loss / `kill -9` mid-protocol without leaving the test
    /// process.
    Crash,
}

impl FaultKind {
    fn error(self, point: &str) -> io::Error {
        match self {
            FaultKind::Errno(kind) => io::Error::new(kind, format!("injected fault at {point}")),
            FaultKind::PartialWrite => {
                io::Error::other(format!("injected partial write at {point}"))
            }
            FaultKind::FsyncLoss => {
                io::Error::other(format!("injected fsync page loss at {point}"))
            }
            FaultKind::Crash => io::Error::other(format!("injected crash at {point}")),
        }
    }
}

/// One scripted fault: fail the `nth` crossing of `point` with `kind`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Faultpoint name, exact (`"wal.segment.sync"`) or a prefix ending in
    /// `*` (`"wal.*"`).
    pub point: String,
    /// Which matching crossing to fail, 1-based. `0` fails **every**
    /// matching crossing (a persistent fault, e.g. a full disk).
    pub nth: u64,
    /// What to inject.
    pub kind: FaultKind,
}

impl FaultRule {
    fn matches(&self, point: &str) -> bool {
        match self.point.strip_suffix('*') {
            Some(prefix) => point.starts_with(prefix),
            None => self.point == point,
        }
    }
}

/// A scriptable, deterministic injection schedule: an ordered list of
/// [`FaultRule`]s evaluated at every crossing while armed.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a rule, builder style: fail the `nth` crossing of `point`
    /// (1-based; 0 = every crossing) with `kind`.
    pub fn fail(mut self, point: impl Into<String>, nth: u64, kind: FaultKind) -> FaultPlan {
        self.rules.push(FaultRule {
            point: point.into(),
            nth,
            kind,
        });
        self
    }

    /// The scripted rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Builds a one-rule plan by drawing a site and a fault kind from
    /// `rng`, given the `(point, crossings)` census of a traced run (see
    /// [`Controller::take_trace`] and [`census`]). Returns the
    /// plan and the rule it chose, so a failing case can print what it
    /// injected alongside the seed that reproduces it.
    pub fn seeded(rng: &mut SmallRng, sites: &[(String, u64)]) -> Option<(FaultPlan, FaultRule)> {
        if sites.is_empty() {
            return None;
        }
        let (point, crossings) = &sites[rng.below(sites.len() as u64) as usize];
        let nth = 1 + rng.below((*crossings).max(1));
        let kind = match rng.below(4) {
            0 => FaultKind::Errno(io::ErrorKind::Other),
            1 => FaultKind::Errno(io::ErrorKind::StorageFull),
            2 if point.ends_with(".write") => FaultKind::PartialWrite,
            2 => FaultKind::FsyncLoss,
            _ => FaultKind::Crash,
        };
        let rule = FaultRule {
            point: point.clone(),
            nth,
            kind,
        };
        Some((FaultPlan::new().fail(point.clone(), nth, kind), rule))
    }
}

/// A fault that actually fired: where, which crossing, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The faultpoint that was crossed.
    pub point: String,
    /// The 1-based crossing index (per matching rule) that fired.
    pub crossing: u64,
    /// What was injected.
    pub kind: FaultKind,
}

#[derive(Default)]
struct State {
    rules: Vec<FaultRule>,
    rule_hits: Vec<u64>,
    trace: Option<Vec<String>>,
    crashed: bool,
    injected: Vec<InjectedFault>,
}

/// True while a plan is armed or a trace is recording — the one relaxed
/// load every crossing pays.
static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> MutexGuard<'static, State> {
    static STATE: Mutex<State> = Mutex::new(State {
        rules: Vec::new(),
        rule_hits: Vec::new(),
        trace: None,
        crashed: false,
        injected: Vec::new(),
    });
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether injection (or tracing) is currently armed. One relaxed atomic
/// load — the entire disabled-path cost of a faultpoint.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Consults the armed plan at a crossing of `point`. `None` = proceed.
/// Callers must have checked [`armed`] first (the fast path lives there so
/// point names need not even be assembled when injection is off).
pub(crate) fn crossing(point: &str) -> Option<FaultKind> {
    let mut st = state();
    if let Some(trace) = st.trace.as_mut() {
        trace.push(point.to_string());
    }
    if st.crashed {
        // The process is "dead": every operation fails, nothing is logged
        // as a fresh injection (the crash already was).
        return Some(FaultKind::Errno(io::ErrorKind::Other));
    }
    for i in 0..st.rules.len() {
        if !st.rules[i].matches(point) {
            continue;
        }
        st.rule_hits[i] += 1;
        let hit = st.rule_hits[i];
        let rule = &st.rules[i];
        if rule.nth == 0 || hit == rule.nth {
            let kind = rule.kind;
            st.injected.push(InjectedFault {
                point: point.to_string(),
                crossing: hit,
                kind,
            });
            if kind == FaultKind::Crash {
                st.crashed = true;
                metrics::metrics().crashes.inc();
            }
            metrics::metrics().injected.inc();
            return Some(kind);
        }
    }
    None
}

/// A named failpoint for call sites that gate a *step* rather than a file
/// operation: returns `Err` when the armed plan fails this crossing
/// (non-errno kinds degrade to an opaque I/O error). Disarmed cost: one
/// relaxed atomic load.
pub fn point(name: &str) -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    match crossing(name) {
        Some(kind) => Err(kind.error(name)),
        None => Ok(()),
    }
}

/// Exclusive handle over the process-wide injection state.
///
/// Only one controller exists at a time ([`control`] blocks until the
/// previous one drops), so concurrently running tests in one binary cannot
/// arm plans into each other. Dropping the controller disarms everything
/// and clears all state — a panicking test cannot leave faults armed for
/// the next one.
pub struct Controller {
    _exclusive: MutexGuard<'static, ()>,
}

/// Acquires the exclusive [`Controller`], blocking until any previous one
/// is dropped.
pub fn control() -> Controller {
    static CONTROL: Mutex<()> = Mutex::new(());
    let guard = CONTROL.lock().unwrap_or_else(|e| e.into_inner());
    let c = Controller { _exclusive: guard };
    c.reset();
    c
}

impl Controller {
    /// Arms `plan`: crossings consult it until [`Controller::disarm`] or
    /// drop. Replaces any armed plan; rule hit-counts and crash state
    /// start fresh.
    pub fn arm(&self, plan: FaultPlan) {
        let mut st = state();
        st.rule_hits = vec![0; plan.rules.len()];
        st.rules = plan.rules;
        st.crashed = false;
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Disarms the plan (tracing, if started, keeps recording). Injected-
    /// fault history is kept for [`Controller::injected`].
    pub fn disarm(&self) {
        let mut st = state();
        st.rules.clear();
        st.rule_hits.clear();
        st.crashed = false;
        ARMED.store(st.trace.is_some(), Ordering::Relaxed);
    }

    /// Starts recording every faultpoint crossing, in order.
    pub fn start_trace(&self) {
        state().trace = Some(Vec::new());
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Stops recording and returns the crossings seen since
    /// [`Controller::start_trace`].
    pub fn take_trace(&self) -> Vec<String> {
        let mut st = state();
        let trace = st.trace.take().unwrap_or_default();
        ARMED.store(!st.rules.is_empty(), Ordering::Relaxed);
        trace
    }

    /// Every fault injected since the last [`Controller::arm`] history
    /// clear (faults accumulate across arm/disarm cycles until `reset`).
    pub fn injected(&self) -> Vec<InjectedFault> {
        state().injected.clone()
    }

    /// Whether an armed [`FaultKind::Crash`] has fired (all subsequent
    /// operations are failing).
    pub fn crashed(&self) -> bool {
        state().crashed
    }

    /// Clears everything: plan, trace, crash state, injection history.
    pub fn reset(&self) {
        let mut st = state();
        *st = State::default();
        ARMED.store(false, Ordering::Relaxed);
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.reset();
    }
}

/// A tiny deterministic RNG (xorshift64*) for seeded fault plans — the
/// crate stays standard-library only.
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SmallRng {
    /// Seeds the generator (a zero seed is nudged to a fixed constant).
    pub fn new(seed: u64) -> SmallRng {
        SmallRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw uniform in `0..n` (`n` of 0 yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Collapses a trace (ordered crossings) into a sorted
/// `(point, crossings)` census — the site list chaos harnesses enumerate.
pub fn census(trace: &[String]) -> Vec<(String, u64)> {
    let mut counts: HashMap<&str, u64> = HashMap::new();
    for point in trace {
        *counts.entry(point).or_insert(0) += 1;
    }
    let mut sites: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(p, n)| (p.to_string(), n))
        .collect();
    sites.sort();
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_are_free_and_open() {
        assert!(!armed());
        point("anything.at.all").unwrap();
    }

    #[test]
    fn nth_crossing_fails_once_then_clears() {
        let ctl = control();
        ctl.arm(FaultPlan::new().fail("a.b", 2, FaultKind::Errno(io::ErrorKind::Other)));
        point("a.b").unwrap();
        let err = point("a.b").expect_err("second crossing fails");
        assert!(err.to_string().contains("a.b"), "{err}");
        point("a.b").unwrap();
        point("a.c").unwrap();
        let injected = ctl.injected();
        assert_eq!(injected.len(), 1);
        assert_eq!(injected[0].point, "a.b");
        assert_eq!(injected[0].crossing, 2);
    }

    #[test]
    fn persistent_and_prefix_rules() {
        let ctl = control();
        ctl.arm(FaultPlan::new().fail("disk.*", 0, FaultKind::Errno(io::ErrorKind::StorageFull)));
        for p in ["disk.write", "disk.sync", "disk.write"] {
            let err = point(p).expect_err("every crossing fails");
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        }
        point("elsewhere.write").unwrap();
        assert_eq!(ctl.injected().len(), 3);
    }

    #[test]
    fn crash_fails_everything_after() {
        let ctl = control();
        ctl.arm(FaultPlan::new().fail("x.y", 1, FaultKind::Crash));
        point("other").unwrap();
        point("x.y").expect_err("the crash itself");
        assert!(ctl.crashed());
        point("other").expect_err("dead processes do no I/O");
        point("third.thing").expect_err("still dead");
        assert_eq!(ctl.injected().len(), 1, "only the crash is an injection");
        ctl.disarm();
        point("other").unwrap();
    }

    #[test]
    fn trace_records_ordered_crossings_and_census_counts() {
        let ctl = control();
        ctl.start_trace();
        point("b.two").unwrap();
        point("a.one").unwrap();
        point("b.two").unwrap();
        let trace = ctl.take_trace();
        assert_eq!(trace, vec!["b.two", "a.one", "b.two"]);
        assert_eq!(
            census(&trace),
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 2)]
        );
        assert!(!armed(), "taking the trace disarms when no plan is set");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let sites = vec![("p.q".to_string(), 5), ("r.s".to_string(), 2)];
        let (plan_a, rule_a) = FaultPlan::seeded(&mut SmallRng::new(42), &sites).unwrap();
        let (_, rule_b) = FaultPlan::seeded(&mut SmallRng::new(42), &sites).unwrap();
        assert_eq!(rule_a.point, rule_b.point);
        assert_eq!(rule_a.nth, rule_b.nth);
        assert_eq!(rule_a.kind, rule_b.kind);
        assert_eq!(plan_a.rules().len(), 1);
        assert!(rule_a.nth >= 1);
        assert!(FaultPlan::seeded(&mut SmallRng::new(1), &[]).is_none());
    }

    #[test]
    fn controller_drop_disarms() {
        {
            let ctl = control();
            ctl.arm(FaultPlan::new().fail("z", 0, FaultKind::Crash));
            point("z").expect_err("armed");
        }
        point("z").expect("dropping the controller disarmed the plan");
    }
}
