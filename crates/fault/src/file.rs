//! Fault-aware file operations: [`FaultFile`] for long-lived handles
//! (WAL segments, snapshot temp files) and [`fs`] for one-shot operations
//! (read, rename, remove, truncate, directory sync).
//!
//! Every operation crosses a faultpoint named `{label}.{op}` (e.g.
//! `wal.segment.write`, `persist.snapshot.sync`). Disarmed, the crossing
//! is one relaxed atomic load — the point name is never even assembled.

use crate::{armed, crossing, FaultKind};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;

/// Consults the armed plan for `{label}.{op}`, allocating the point name
/// only when injection is on.
fn check(label: &str, op: &str) -> Option<(FaultKind, String)> {
    if !armed() {
        return None;
    }
    let point = format!("{label}.{op}");
    crossing(&point).map(|kind| (kind, point))
}

fn fail(label: &str, op: &str) -> io::Result<()> {
    match check(label, op) {
        Some((kind, point)) => Err(kind.error(&point)),
        None => Ok(()),
    }
}

/// A [`File`] whose operations cross faultpoints and which models the
/// on-disk consequences of the injected fault, not just the errno:
///
/// * [`FaultKind::PartialWrite`] writes a prefix of the buffer before
///   erroring — the torn bytes really land in the file.
/// * [`FaultKind::FsyncLoss`] reports the sync failure **and discards**
///   every byte written since the last successful sync (truncating back
///   to the synced length), so a caller that shrugs and retries reads
///   back a file that silently lost its tail — the fsyncgate scenario.
///
/// The dirty-page model assumes append-style writing (all writes extend
/// the file), which is how the WAL and snapshot writer use files; that is
/// what makes "lost dirty pages" expressible as a truncation.
#[derive(Debug)]
pub struct FaultFile {
    inner: File,
    label: String,
    /// Current logical length, tracked through writes and truncations.
    len: u64,
    /// Length as of the last successful sync — the prefix that survives
    /// an injected [`FaultKind::FsyncLoss`].
    synced_len: u64,
}

impl FaultFile {
    /// Opens `path` with `options`, crossing `{label}.open`. Bytes already
    /// in the file are treated as durable (only writes through this
    /// handle are at risk from an injected fsync loss).
    pub fn open(path: &Path, options: &OpenOptions, label: &str) -> io::Result<FaultFile> {
        fail(label, "open")?;
        let inner = options.open(path)?;
        let len = inner.metadata()?.len();
        Ok(FaultFile {
            inner,
            label: label.to_string(),
            len,
            synced_len: len,
        })
    }

    /// Creates (truncating) `path` for writing, crossing `{label}.create`.
    pub fn create(path: &Path, label: &str) -> io::Result<FaultFile> {
        fail(label, "create")?;
        let inner = File::create(path)?;
        Ok(FaultFile {
            inner,
            label: label.to_string(),
            len: 0,
            synced_len: 0,
        })
    }

    /// Writes the whole buffer, crossing `{label}.write`. An injected
    /// [`FaultKind::PartialWrite`] lands `buf.len() / 2` torn bytes
    /// before the error.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match check(&self.label, "write") {
            None => {
                self.inner.write_all(buf)?;
                self.len += buf.len() as u64;
                Ok(())
            }
            Some((FaultKind::PartialWrite, point)) => {
                let torn = &buf[..buf.len() / 2];
                self.inner.write_all(torn)?;
                self.len += torn.len() as u64;
                Err(FaultKind::PartialWrite.error(&point))
            }
            Some((kind, point)) => Err(kind.error(&point)),
        }
    }

    /// Syncs file data, crossing `{label}.sync`. An injected
    /// [`FaultKind::FsyncLoss`] errors **and** drops all bytes written
    /// since the last successful sync.
    pub fn sync_data(&mut self) -> io::Result<()> {
        self.sync_at("sync", false)
    }

    /// Syncs data and metadata, crossing `{label}.sync` (same point as
    /// [`FaultFile::sync_data`]: one fsync seam per handle).
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.sync_at("sync", true)
    }

    fn sync_at(&mut self, op: &str, all: bool) -> io::Result<()> {
        match check(&self.label, op) {
            None => {
                if all {
                    self.inner.sync_all()?;
                } else {
                    self.inner.sync_data()?;
                }
                self.synced_len = self.len;
                Ok(())
            }
            Some((FaultKind::FsyncLoss, point)) => {
                // The kernel dropped the dirty pages and cleared the error
                // flag: the unsynced suffix is gone for good.
                let _ = self.inner.set_len(self.synced_len);
                self.len = self.synced_len;
                Err(FaultKind::FsyncLoss.error(&point))
            }
            Some((kind, point)) => Err(kind.error(&point)),
        }
    }

    /// Truncates (or extends) the file, crossing `{label}.truncate`.
    pub fn set_len(&mut self, size: u64) -> io::Result<()> {
        fail(&self.label, "truncate")?;
        self.inner.set_len(size)?;
        self.len = size;
        self.synced_len = self.synced_len.min(size);
        Ok(())
    }

    /// Seeks the underlying file (no faultpoint: seeks do no I/O that the
    /// fault model distinguishes).
    pub fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }

    /// Reads to the end of the file from the current position, crossing
    /// `{label}.read`.
    pub fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        fail(&self.label, "read")?;
        self.inner.read_to_end(buf)
    }
}

/// Whether a directory-entry fsync actually reached the kernel — the
/// typed replacement for the old silent no-op fallback on platforms
/// without directory handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirSync {
    /// The directory was opened and fsynced.
    Synced,
    /// This platform cannot fsync directories; renames and file creations
    /// may not be durable across power loss. Callers should surface this
    /// (counter + once-logged warning) rather than swallow it.
    Unsupported,
}

/// One-shot fault-aware filesystem operations, each crossing the caller's
/// named point.
pub mod fs {
    use super::{armed, crossing, DirSync};
    use std::fs::OpenOptions;
    use std::io;
    use std::path::Path;

    fn fail(point: &str) -> io::Result<()> {
        if !armed() {
            return Ok(());
        }
        match crossing(point) {
            Some(kind) => Err(kind.error(point)),
            None => Ok(()),
        }
    }

    /// Reads a whole file, crossing `point`.
    pub fn read(path: &Path, point: &str) -> io::Result<Vec<u8>> {
        fail(point)?;
        std::fs::read(path)
    }

    /// Renames `from` to `to`, crossing `point`.
    pub fn rename(from: &Path, to: &Path, point: &str) -> io::Result<()> {
        fail(point)?;
        std::fs::rename(from, to)
    }

    /// Removes a file, crossing `point`.
    pub fn remove_file(path: &Path, point: &str) -> io::Result<()> {
        fail(point)?;
        std::fs::remove_file(path)
    }

    /// Truncates `path` to `len` and syncs it, crossing `point` once (the
    /// open/set_len/sync triple is one repair step to the fault model).
    pub fn truncate(path: &Path, len: u64, point: &str) -> io::Result<()> {
        fail(point)?;
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }

    /// Fsyncs a directory entry so renames/creations in it are durable,
    /// crossing `point`. On platforms without directory handles this is
    /// [`DirSync::Unsupported`] — a capability signal, not an error.
    pub fn fsync_dir(dir: &Path, point: &str) -> io::Result<DirSync> {
        fail(point)?;
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()?;
            Ok(DirSync::Synced)
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(DirSync::Unsupported)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::scratch_dir;
    use crate::{control, FaultPlan};

    #[test]
    fn partial_write_leaves_torn_prefix() {
        let dir = scratch_dir("fault-partial");
        let path = dir.join("f.bin");
        let ctl = control();
        let mut file = FaultFile::create(&path, "t").unwrap();
        ctl.arm(FaultPlan::new().fail("t.write", 2, FaultKind::PartialWrite));
        file.write_all(b"aaaa").unwrap();
        let err = file.write_all(b"bbbb").expect_err("second write torn");
        assert!(err.to_string().contains("partial write"), "{err}");
        file.sync_data().unwrap();
        drop(ctl);
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaabb");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_loss_discards_unsynced_tail() {
        let dir = scratch_dir("fault-fsyncloss");
        let path = dir.join("f.bin");
        let ctl = control();
        let mut file = FaultFile::create(&path, "t").unwrap();
        file.write_all(b"durable:").unwrap();
        file.sync_data().unwrap();
        ctl.arm(FaultPlan::new().fail("t.sync", 1, FaultKind::FsyncLoss));
        file.write_all(b"doomed").unwrap();
        let err = file.sync_data().expect_err("fsync reports the loss");
        assert!(err.to_string().contains("page loss"), "{err}");
        ctl.disarm();
        // A shrug-and-retry sync succeeds but the tail is already gone.
        file.sync_data().unwrap();
        drop(ctl);
        assert_eq!(std::fs::read(&path).unwrap(), b"durable:");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disarmed_passthrough_round_trips() {
        let dir = scratch_dir("fault-passthrough");
        let path = dir.join("f.bin");
        let mut options = OpenOptions::new();
        options.read(true).write(true).create(true);
        let mut file = FaultFile::open(&path, &options, "t").unwrap();
        file.write_all(b"hello").unwrap();
        file.sync_all().unwrap();
        file.set_len(4).unwrap();
        file.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hell");
        assert_eq!(fs::read(&path, "t.read").unwrap(), b"hell");
        fs::fsync_dir(&dir, "t.dirsync").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_ops_fault_and_recover() {
        let dir = scratch_dir("fault-fsops");
        let a = dir.join("a");
        let b = dir.join("b");
        std::fs::write(&a, b"payload").unwrap();
        let ctl = control();
        ctl.arm(
            FaultPlan::new()
                .fail("p.rename", 1, FaultKind::Errno(io::ErrorKind::Other))
                .fail(
                    "p.truncate",
                    1,
                    FaultKind::Errno(io::ErrorKind::StorageFull),
                ),
        );
        fs::rename(&a, &b, "p.rename").expect_err("rename faulted");
        assert!(a.exists() && !b.exists(), "faulted rename did not happen");
        fs::rename(&a, &b, "p.rename").expect("second crossing clean");
        let err = fs::truncate(&b, 3, "p.truncate").expect_err("truncate faulted");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        fs::truncate(&b, 3, "p.truncate").unwrap();
        drop(ctl);
        assert_eq!(std::fs::read(&b).unwrap(), b"pay");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
