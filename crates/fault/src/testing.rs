//! Shared helpers for fault-tolerance tests across the workspace: scratch
//! directories and the corrupt-a-file pattern previously copy-pasted into
//! each crate's durability tests.

use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh, empty scratch directory under the system temp dir, unique per
/// process and call. Callers own cleanup (tests usually
/// `fs::remove_dir_all` on success and leave the directory behind on
/// failure for inspection).
pub fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("aiql-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Flips one byte in the middle of `path` — the canonical "bit rot /
/// corrupt snapshot" mutation the CRC layers must catch.
pub fn corrupt_file(path: &std::path::Path) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::other("cannot corrupt an empty file"));
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_empty() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        assert_eq!(fs::read_dir(&a).unwrap().count(), 0);
        fs::remove_dir_all(&a).unwrap();
        fs::remove_dir_all(&b).unwrap();
    }

    #[test]
    fn corrupt_file_flips_one_middle_byte() {
        let dir = scratch_dir("corrupt");
        let path = dir.join("f.bin");
        fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        corrupt_file(&path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), [1u8, 2, 3 ^ 0xff, 4, 5]);
        assert!(corrupt_file(&dir.join("missing")).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
