//! The Greenplum-style baseline: big-join SQL over MPP segments with
//! scatter/gather execution.

use crate::{BaselineError, Rows};
use aiql_core::QueryContext;
use aiql_storage::SegmentedStore;
use aiql_translate::sql::to_sql;
use std::time::Instant;

/// Executes the big-join SQL on the segmented store: per-table scans are
/// pushed to all segments in parallel, matching rows are gathered to a
/// coordinator, and the join runs there — the execution shape of an MPP
/// engine whose placement does not co-locate the join (paper Sec. 6.3.3).
pub fn run(
    store: &SegmentedStore,
    ctx: &QueryContext,
    deadline: Option<Instant>,
) -> Result<Rows, BaselineError> {
    let sql = to_sql(ctx)?;
    let rs = store.sdb().query_gather(&sql, deadline)?;
    let mut rows = rs.rows;
    if ctx.ret.count {
        rows = vec![vec![aiql_rdb::Value::Int(rows.len() as i64)]];
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;
    use aiql_datagen::EnterpriseSim;

    #[test]
    fn gather_execution_matches_single_node() {
        let data = EnterpriseSim::builder()
            .hosts(10)
            .days(2)
            .seed(5)
            .events_per_host_per_day(200)
            .build()
            .generate();
        let seg = SegmentedStore::ingest(&data, 5, false).unwrap();
        let single =
            aiql_storage::EventStore::ingest(&data, aiql_storage::StoreConfig::monolithic())
                .unwrap();
        let ctx = compile(
            r#"
            (at "01/02/2017")
            agentid = 9
            proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
            proc p4["%sbblv.exe"] read file f1 as evt3
            with evt2 before evt3
            return distinct p3, f1, p4
            "#,
        )
        .unwrap();
        let gp = crate::normalize(run(&seg, &ctx, None).unwrap());
        let (pg, _) = crate::postgres::run(&single, &ctx, None).unwrap();
        assert_eq!(gp, crate::normalize(pg));
        assert_eq!(gp.len(), 1);
    }
}
