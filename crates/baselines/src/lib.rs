//! The comparison systems of the paper's evaluation (Sec. 6):
//!
//! - [`postgres`] — executes the big-join SQL translation on the
//!   single-node relational substrate, the "PostgreSQL" baseline of the
//!   end-to-end study (monolithic storage) and of the scheduling study
//!   (partition-optimized storage, Fig. 6);
//! - [`neo4j`] — loads entities as nodes and events as relationships into
//!   the property-graph substrate and evaluates the pattern by traversal,
//!   the "Neo4j" baseline;
//! - [`greenplum`] — executes the big-join SQL with scatter/gather on the
//!   segmented store, the "Greenplum" baseline of Fig. 7.
//!
//! All baselines return plain row sets so differential tests can check them
//! against the AIQL engine's results.

pub mod greenplum;
pub mod neo4j;
pub mod postgres;

use aiql_rdb::Value;

/// A baseline result: rows only (columns follow the query's return clause).
pub type Rows = Vec<Vec<Value>>;

/// Normalizes rows for order-insensitive comparison in differential tests.
pub fn normalize(mut rows: Rows) -> Rows {
    rows.sort();
    rows.dedup();
    rows
}

/// Errors from baseline execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// The query cannot be expressed in this baseline.
    Untranslatable(String),
    /// Storage-layer failure.
    Storage(aiql_rdb::RdbError),
    /// The execution deadline elapsed (the paper's ">1 hour" cases).
    Timeout,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Untranslatable(m) => write!(f, "untranslatable: {m}"),
            BaselineError::Storage(e) => write!(f, "storage: {e}"),
            BaselineError::Timeout => write!(f, "baseline exceeded its deadline"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<aiql_rdb::RdbError> for BaselineError {
    fn from(e: aiql_rdb::RdbError) -> Self {
        match e {
            aiql_rdb::RdbError::Timeout => BaselineError::Timeout,
            other => BaselineError::Storage(other),
        }
    }
}

impl From<aiql_translate::TranslateError> for BaselineError {
    fn from(e: aiql_translate::TranslateError) -> Self {
        BaselineError::Untranslatable(e.to_string())
    }
}
