//! The PostgreSQL-style baseline: one big semantics-agnostic SQL join.

use crate::{BaselineError, Rows};
use aiql_core::QueryContext;
use aiql_rdb::{ExecCtx, ExecStats};
use aiql_storage::EventStore;
use aiql_translate::sql::to_sql;
use std::time::Instant;

/// Executes the query context as a single big SQL join against the store's
/// database (monolithic or partition-optimized, depending on how the store
/// was built). `deadline` bounds execution, modelling the paper's one-hour
/// budget.
pub fn run(
    store: &EventStore,
    ctx: &QueryContext,
    deadline: Option<Instant>,
) -> Result<(Rows, ExecStats), BaselineError> {
    let sql = to_sql(ctx)?;
    let mut ectx = ExecCtx::with_deadline(deadline);
    let rs = store.db().query_ctx(&sql, &mut ectx)?;
    let mut rows = rs.rows;
    // AIQL's `return count` wraps the row set; mirror it for differential
    // comparison.
    if ctx.ret.count {
        rows = vec![vec![aiql_rdb::Value::Int(rows.len() as i64)]];
    }
    Ok((rows, ectx.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;
    use aiql_datagen::EnterpriseSim;
    use aiql_storage::StoreConfig;

    #[test]
    fn finds_the_planted_chain() {
        let data = EnterpriseSim::builder()
            .hosts(10)
            .days(2)
            .seed(5)
            .events_per_host_per_day(300)
            .build()
            .generate();
        let store = EventStore::ingest(&data, StoreConfig::monolithic()).unwrap();
        let ctx = compile(
            r#"
            (at "01/02/2017")
            agentid = 9
            proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
            proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
            with evt1 before evt2
            return distinct p1, p2, p3, f1
            "#,
        )
        .unwrap();
        let (rows, stats) = run(&store, &ctx, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0][3],
            aiql_rdb::Value::str("C:\\MSSQL\\data\\BACKUP1.DMP")
        );
        assert!(stats.rows_scanned > 0);
    }

    #[test]
    fn anomaly_is_untranslatable() {
        let data = EnterpriseSim::builder()
            .hosts(2)
            .days(1)
            .events_per_host_per_day(10)
            .build()
            .generate();
        let store = EventStore::ingest(&data, StoreConfig::monolithic()).unwrap();
        let ctx = compile(
            "window = 1 min step = 10 sec proc p read ip i \
             return p, count(distinct i) as freq group by p having freq > freq[1]",
        )
        .unwrap();
        assert!(matches!(
            run(&store, &ctx, None),
            Err(BaselineError::Untranslatable(_))
        ));
    }
}
