//! The Neo4j-style baseline: entities as nodes, events as relationships,
//! traversal-based pattern matching.

use crate::{BaselineError, Rows};
use aiql_core::ast::{CmpOp, TempKind};
use aiql_core::{CstrNode, FieldTarget, QueryContext, RelationCtx, RetExprCtx};
use aiql_graphdb::pattern::{
    CrossPred, EdgePat, NodePat, POp, PatternQuery, PropPred, TempConstraint, Triple,
};
use aiql_graphdb::{GraphDb, MatchStats};
use aiql_model::{Dataset, Value};
use aiql_translate::names::{alias_of, pattern_names};
use std::time::Instant;

/// Loads a dataset into the property graph the way the paper configures
/// Neo4j: entities become nodes (labelled by kind, with their attributes),
/// events become relationships (labelled by operation, stamped with the
/// event time and agent). Label/property indexes are created on the
/// frequently-queried attributes, as for the other systems.
pub fn load_graph(data: &Dataset) -> GraphDb {
    let mut g = GraphDb::new();
    let mut node_of = std::collections::HashMap::new();
    for e in &data.entities {
        let mut props: Vec<(&str, Value)> = vec![
            ("model_id", Value::Int(e.id.0 as i64)),
            ("agentid", Value::Int(e.agent.0 as i64)),
        ];
        for (k, v) in &e.attrs {
            props.push((k.as_str(), v.clone()));
        }
        let id = g.add_node(e.kind.keyword(), props);
        node_of.insert(e.id, id);
    }
    for ev in &data.events {
        let (Some(&src), Some(&dst)) = (node_of.get(&ev.subject), node_of.get(&ev.object)) else {
            continue; // Dangling reference: skip, as an importer would.
        };
        g.add_edge(
            src,
            dst,
            ev.op.keyword(),
            ev.start.0,
            vec![
                ("model_id", Value::Int(ev.id.0 as i64)),
                ("agentid", Value::Int(ev.agent.0 as i64)),
                ("amount", Value::Int(ev.amount)),
                ("failure", Value::Int(ev.failure as i64)),
            ],
        );
    }
    // Neo4j-style label/property indexes on the hot attributes.
    g.create_node_index("proc", "exe_name");
    g.create_node_index("file", "name");
    g.create_node_index("ip", "dst_ip");
    g.create_node_index("proc", "model_id");
    g.create_node_index("file", "model_id");
    g.create_node_index("ip", "model_id");
    g
}

fn pop(op: CmpOp) -> POp {
    match op {
        CmpOp::Eq => POp::Eq,
        CmpOp::Ne => POp::Ne,
        CmpOp::Lt => POp::Lt,
        CmpOp::Le => POp::Le,
        CmpOp::Gt => POp::Gt,
        CmpOp::Ge => POp::Ge,
    }
}

/// Maps an AIQL attribute to its graph property name.
fn prop_name(attr: &str) -> Result<String, BaselineError> {
    Ok(match attr {
        "id" => "model_id".to_string(),
        "optype" | "start_time" | "end_time" | "seq" => {
            return Err(BaselineError::Untranslatable(format!(
                "attribute `{attr}` is not materialized as a graph property"
            )))
        }
        other => other.to_string(),
    })
}

fn pred_of(c: &CstrNode) -> Result<PropPred, BaselineError> {
    Ok(match c {
        CstrNode::Cmp { attr, op, value } => {
            PropPred::Cmp(prop_name(attr)?, pop(*op), value.clone())
        }
        CstrNode::Like { attr, pattern, neg } => {
            if *neg {
                PropPred::NotLike(prop_name(attr)?, pattern.clone())
            } else {
                PropPred::Like(prop_name(attr)?, pattern.clone())
            }
        }
        CstrNode::In { attr, neg, values } => {
            let inner = PropPred::In(prop_name(attr)?, values.clone());
            if *neg {
                PropPred::Not(Box::new(inner))
            } else {
                inner
            }
        }
        CstrNode::And(cs) => PropPred::And(cs.iter().map(pred_of).collect::<Result<_, _>>()?),
        CstrNode::Or(cs) => PropPred::Or(cs.iter().map(pred_of).collect::<Result<_, _>>()?),
        CstrNode::Not(inner) => PropPred::Not(Box::new(pred_of(inner)?)),
    })
}

/// Compiles a query context into a traversal pattern.
pub fn to_pattern(ctx: &QueryContext) -> Result<PatternQuery, BaselineError> {
    if ctx.slide.is_some() {
        return Err(BaselineError::Untranslatable(
            "sliding windows have no Cypher equivalent".into(),
        ));
    }
    if !ctx.group_by.is_empty()
        || ctx.having.is_some()
        || ctx
            .ret
            .items
            .iter()
            .any(|i| matches!(i.expr, RetExprCtx::Agg { .. }))
    {
        return Err(BaselineError::Untranslatable(
            "aggregation is outside the traversal baseline".into(),
        ));
    }
    let names = pattern_names(ctx);
    let mut triples = Vec::new();
    for (i, p) in ctx.patterns.iter().enumerate() {
        let n = &names[i];
        let subj_preds: Vec<PropPred> =
            p.subj_cstr.iter().map(pred_of).collect::<Result<_, _>>()?;
        let obj_preds: Vec<PropPred> = p.obj_cstr.iter().map(pred_of).collect::<Result<_, _>>()?;
        let mut edge_preds: Vec<PropPred> =
            p.evt_cstr.iter().map(pred_of).collect::<Result<_, _>>()?;
        if let Some(agents) = &p.agents {
            edge_preds.push(PropPred::In(
                "agentid".into(),
                agents.iter().map(|a| Value::Int(*a)).collect(),
            ));
        }
        let labels: Vec<&str> = p.ops.iter().map(|o| o.keyword()).collect();
        let mut edge = EdgePat::new(&n.event, &labels, edge_preds);
        if let Some((lo, hi)) = p.window {
            edge = edge.between(lo, hi - 1);
        }
        triples.push(Triple {
            src: NodePat::with_var(&n.subject, "proc", subj_preds),
            edge,
            dst: NodePat::with_var(&n.object, p.object_kind.keyword(), obj_preds),
        });
    }

    let mut q = PatternQuery::new(triples);
    q.cross.clear();
    for rel in &ctx.relations {
        match rel {
            RelationCtx::Attr { left, op, right } => {
                let lvar = alias_of(&names, left).to_string();
                let rvar = alias_of(&names, right).to_string();
                // Entity reuse is already enforced by shared variable names.
                if left.attr == "id" && right.attr == "id" && lvar == rvar {
                    continue;
                }
                q.cross.push(CrossPred {
                    left_var: lvar,
                    left_prop: prop_name(&left.attr)?,
                    op: pop(*op),
                    right_var: rvar,
                    right_prop: prop_name(&right.attr)?,
                });
            }
            RelationCtx::Temporal {
                left,
                kind,
                range_ns,
                right,
            } => {
                q.temporal.push(TempConstraint {
                    left: names[*left].event.clone(),
                    before: matches!(kind, TempKind::Before),
                    right: names[*right].event.clone(),
                    gap: *range_ns,
                    within: matches!(kind, TempKind::Within),
                });
            }
        }
    }

    q.returns = ctx
        .ret
        .items
        .iter()
        .map(|item| match &item.expr {
            RetExprCtx::Field(f) => {
                let prop = match (f.target, f.attr.as_str()) {
                    (FieldTarget::Event, "optype") => "optype".to_string(),
                    (FieldTarget::Event, "start_time") => "time".to_string(),
                    (_, attr) => prop_name(attr)?,
                };
                Ok((alias_of(&names, f).to_string(), prop))
            }
            RetExprCtx::Agg { .. } => unreachable!("aggregates rejected above"),
        })
        .collect::<Result<Vec<_>, BaselineError>>()?;
    Ok(q)
}

/// Runs the query by traversal and applies distinct/sort/top/count.
pub fn run(
    graph: &GraphDb,
    ctx: &QueryContext,
    deadline: Option<Instant>,
) -> Result<(Rows, MatchStats), BaselineError> {
    let q = to_pattern(ctx)?;
    let (mut rows, stats) = q.run_stats(graph, deadline).map_err(|e| match e {
        aiql_graphdb::pattern::MatchError::Timeout => BaselineError::Timeout,
        other => BaselineError::Untranslatable(other.to_string()),
    })?;
    if ctx.ret.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }
    if !ctx.sort_by.is_empty() {
        rows.sort_by(|a, b| {
            for (col, asc) in &ctx.sort_by {
                let ord = a[*col].cmp(&b[*col]);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = ctx.top {
        rows.truncate(n);
    }
    if ctx.ret.count {
        rows = vec![vec![Value::Int(rows.len() as i64)]];
    }
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;
    use aiql_datagen::EnterpriseSim;

    fn graph_and_data() -> (GraphDb, Dataset) {
        let data = EnterpriseSim::builder()
            .hosts(10)
            .days(2)
            .seed(5)
            .events_per_host_per_day(150)
            .build()
            .generate();
        (load_graph(&data), data)
    }

    #[test]
    fn traversal_finds_the_exfil_chain() {
        let (g, _) = graph_and_data();
        let ctx = compile(
            r#"
            (at "01/02/2017")
            agentid = 9
            proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
            proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
            proc p4["%sbblv.exe"] read file f1 as evt3
            with evt1 before evt2, evt2 before evt3
            return distinct p1, p2, p3, f1, p4
            "#,
        )
        .unwrap();
        let (rows, _) = run(&g, &ctx, None).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::str("sbblv.exe"));
    }

    #[test]
    fn matches_postgres_baseline() {
        let (g, data) = graph_and_data();
        let store =
            aiql_storage::EventStore::ingest(&data, aiql_storage::StoreConfig::monolithic())
                .unwrap();
        let ctx = compile(
            r#"
            (at "01/02/2017")
            agentid = 1
            proc p1["%outlook.exe"] start proc p2 as e1
            proc p2 start proc p3 as e2
            with e1 before e2
            return distinct p1, p2, p3
            "#,
        )
        .unwrap();
        let (pg, _) = crate::postgres::run(&store, &ctx, None).unwrap();
        let (n4, _) = run(&g, &ctx, None).unwrap();
        assert_eq!(crate::normalize(pg), crate::normalize(n4));
    }

    #[test]
    fn aggregates_rejected() {
        let (g, _) = graph_and_data();
        let ctx = compile("proc p read file f return p, count(f) as n group by p").unwrap();
        assert!(matches!(
            run(&g, &ctx, None),
            Err(BaselineError::Untranslatable(_))
        ));
    }
}
