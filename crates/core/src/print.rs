//! Canonical pretty-printer: AST → AIQL source.
//!
//! `parse(print(parse(q)))` equals `parse(q)` — the round-trip property the
//! test suite checks. The printer also feeds the conciseness metrics for
//! canonical (whitespace-normalized) AIQL text.

use crate::ast::*;

/// Renders a query as canonical AIQL source.
pub fn to_source(q: &Query) -> String {
    match q {
        Query::Multievent(m) => multievent(m),
        Query::Dependency(d) => dependency(d),
    }
}

fn multievent(q: &MultieventQuery) -> String {
    let mut out = String::new();
    for g in &q.global {
        out.push_str(&global(g));
        out.push('\n');
    }
    for p in &q.patterns {
        out.push_str(&pattern(p));
        out.push('\n');
    }
    if !q.relations.is_empty() {
        let rels: Vec<String> = q.relations.iter().map(relation).collect();
        out.push_str(&format!("with {}\n", rels.join(", ")));
    }
    out.push_str(&ret(&q.ret));
    if !q.group_by.is_empty() {
        let g: Vec<String> = q.group_by.iter().map(ret_expr).collect();
        out.push_str(&format!("\ngroup by {}", g.join(", ")));
    }
    if let Some(h) = &q.having {
        out.push_str(&format!("\nhaving {}", having(h)));
    }
    out.push_str(&tail(&q.sort_by, q.top));
    out
}

fn dependency(q: &DependencyQuery) -> String {
    let mut out = String::new();
    for g in &q.global {
        out.push_str(&global(g));
        out.push('\n');
    }
    out.push_str(match q.direction {
        Direction::Forward => "forward: ",
        Direction::Backward => "backward: ",
    });
    out.push_str(&entity(&q.entities[0]));
    for (i, (dir, op)) in q.edges.iter().enumerate() {
        let arrow = match dir {
            EdgeDir::Right => "->",
            EdgeDir::Left => "<-",
        };
        out.push_str(&format!(
            " {arrow}[{}] {}",
            op_expr(op),
            entity(&q.entities[i + 1])
        ));
    }
    out.push('\n');
    out.push_str(&ret(&q.ret));
    out.push_str(&tail(&q.sort_by, q.top));
    out
}

fn tail(sort_by: &[(RetExpr, bool)], top: Option<usize>) -> String {
    let mut out = String::new();
    if !sort_by.is_empty() {
        let asc = sort_by[0].1;
        let s: Vec<String> = sort_by.iter().map(|(e, _)| ret_expr(e)).collect();
        out.push_str(&format!(
            "\nsort by {}{}",
            s.join(", "),
            if asc { "" } else { " desc" }
        ));
    }
    if let Some(n) = top {
        out.push_str(&format!("\ntop {n}"));
    }
    out
}

fn global(g: &GlobalCstr) -> String {
    match g {
        GlobalCstr::Attr {
            attr, op, value, ..
        } => {
            format!("{attr} {} {}", cmp(*op), value.to_source())
        }
        GlobalCstr::AttrIn { attr, values, .. } => {
            let vs: Vec<String> = values.iter().map(Lit::to_source).collect();
            format!("{attr} in ({})", vs.join(", "))
        }
        GlobalCstr::Window(w) => format!("({})", window(w)),
        GlobalCstr::SlideWindow { length, .. } => {
            format!("window = {} {}", length.count, unit(length.unit))
        }
        GlobalCstr::SlideStep { length, .. } => {
            format!("step = {} {}", length.count, unit(length.unit))
        }
    }
}

fn unit(u: aiql_model::TimeUnit) -> &'static str {
    use aiql_model::TimeUnit::*;
    match u {
        Millisecond => "ms",
        Second => "sec",
        Minute => "min",
        Hour => "hour",
        Day => "day",
    }
}

fn window(w: &TimeWindow) -> String {
    // A `$name` datetime is a prepared-statement placeholder and prints in
    // its unquoted source spelling.
    let dt = |s: &str| {
        if s.starts_with('$') {
            s.to_string()
        } else {
            format!("\"{s}\"")
        }
    };
    match w {
        TimeWindow::At { datetime, .. } => format!("at {}", dt(datetime)),
        TimeWindow::FromTo { from, to, .. } => format!("from {} to {}", dt(from), dt(to)),
    }
}

fn pattern(p: &EventPattern) -> String {
    let mut out = format!(
        "{} {} {}",
        entity(&p.subject),
        op_expr(&p.op),
        entity(&p.object)
    );
    if let Some(v) = &p.evt_var {
        out.push_str(&format!(" as {v}"));
        if let Some(c) = &p.evt_cstr {
            out.push_str(&format!("[{}]", cstr(c)));
        }
    }
    if let Some(w) = &p.window {
        out.push_str(&format!(" ({})", window(w)));
    }
    out
}

fn entity(e: &EntityPat) -> String {
    let mut out = e.kind.keyword().to_string();
    if let Some(v) = &e.var {
        out.push(' ');
        out.push_str(v);
    }
    if let Some(c) = &e.cstr {
        out.push_str(&format!("[{}]", cstr(c)));
    }
    out
}

fn op_expr(o: &OpExpr) -> String {
    match o {
        OpExpr::Op(name, _) => name.clone(),
        OpExpr::Not(e) => format!("!{}", op_expr(e)),
        OpExpr::And(a, b) => format!("({} && {})", op_expr(a), op_expr(b)),
        OpExpr::Or(a, b) => format!("({} || {})", op_expr(a), op_expr(b)),
    }
}

fn cstr(c: &AttrCstr) -> String {
    match c {
        AttrCstr::Cmp {
            attr, op, value, ..
        } => {
            format!("{attr} {} {}", cmp(*op), value.to_source())
        }
        AttrCstr::Bare { neg, value, .. } => {
            format!("{}{}", if *neg { "!" } else { "" }, value.to_source())
        }
        AttrCstr::In {
            attr, neg, values, ..
        } => {
            let vs: Vec<String> = values.iter().map(Lit::to_source).collect();
            format!(
                "{attr}{} in ({})",
                if *neg { " not" } else { "" },
                vs.join(", ")
            )
        }
        AttrCstr::Not(e) => format!("!({})", cstr(e)),
        AttrCstr::And(a, b) => format!("({} && {})", cstr(a), cstr(b)),
        AttrCstr::Or(a, b) => format!("({} || {})", cstr(a), cstr(b)),
    }
}

fn cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn attr_ref(r: &AttrRef) -> String {
    match &r.attr {
        Some(a) => format!("{}.{a}", r.id),
        None => r.id.clone(),
    }
}

fn relation(r: &Relation) -> String {
    match r {
        Relation::Attr { left, op, right } => {
            format!("{} {} {}", attr_ref(left), cmp(*op), attr_ref(right))
        }
        Relation::Temporal {
            left,
            kind,
            range,
            right,
            ..
        } => {
            let kw = match kind {
                TempKind::Before => "before",
                TempKind::After => "after",
                TempKind::Within => "within",
            };
            match range {
                Some((lo, hi, u)) => format!("{left} {kw}[{lo}-{hi} {}] {right}", unit(*u)),
                None => format!("{left} {kw} {right}"),
            }
        }
    }
}

fn ret(r: &ReturnClause) -> String {
    let mut out = "return ".to_string();
    if r.count {
        out.push_str("count ");
    }
    if r.distinct {
        out.push_str("distinct ");
    }
    let items: Vec<String> = r
        .items
        .iter()
        .map(|i| {
            let mut s = ret_expr(&i.expr);
            if let Some(n) = &i.rename {
                s.push_str(&format!(" as {n}"));
            }
            s
        })
        .collect();
    out.push_str(&items.join(", "));
    out
}

fn ret_expr(e: &RetExpr) -> String {
    match e {
        RetExpr::Ref(r) => attr_ref(r),
        RetExpr::Agg {
            func,
            distinct,
            arg,
            ..
        } => {
            let f = format!("{func:?}").to_lowercase();
            format!(
                "{f}({}{})",
                if *distinct { "distinct " } else { "" },
                attr_ref(arg)
            )
        }
    }
}

fn having(h: &HavingExpr) -> String {
    match h {
        HavingExpr::Cmp { op, left, right } => {
            format!("{} {} {}", arith(left), cmp(*op), arith(right))
        }
        HavingExpr::And(a, b) => format!("({} && {})", having(a), having(b)),
        HavingExpr::Or(a, b) => format!("({} || {})", having(a), having(b)),
        HavingExpr::Not(e) => format!("!({})", having(e)),
    }
}

fn arith(a: &ArithExpr) -> String {
    match a {
        ArithExpr::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        ArithExpr::Ref(r) => attr_ref(r),
        ArithExpr::Hist { name, back, .. } => format!("{name}[{back}]"),
        ArithExpr::MovAvg {
            kind, name, param, ..
        } => {
            let f = match kind {
                MaKind::Sma => "SMA",
                MaKind::Cma => "CMA",
                MaKind::Wma => "WMA",
                MaKind::Ewma => "EWMA",
            };
            format!("{f}({name}, {param})")
        }
        ArithExpr::Add(x, y) => format!("({} + {})", arith(x), arith(y)),
        ArithExpr::Sub(x, y) => format!("({} - {})", arith(x), arith(y)),
        ArithExpr::Mul(x, y) => format!("({} * {})", arith(x), arith(y)),
        ArithExpr::Div(x, y) => format!("({} / {})", arith(x), arith(y)),
        ArithExpr::Neg(x) => format!("(-{})", arith(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn round_trip(src: &str) {
        let q1 = parse(src).unwrap();
        let printed = to_source(&q1);
        let q2 =
            parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\nprinted:\n{printed}"));
        let printed2 = to_source(&q2);
        assert_eq!(printed, printed2, "printer not a fixpoint for:\n{src}");
    }

    #[test]
    fn round_trip_paper_queries() {
        round_trip(
            r#"
            agentid = 1
            (at "01/01/2017")
            proc p1 start proc p2["%telnet%"] as evt1
            proc p3 start ip ipp[dstport = 4444] as evt2
            proc p4["%apache%"] read file f1["/var/www%"] as evt3
            with p2 = p3, evt1 before evt2, evt3 after evt2
            return p1, p2, p4, f1
            "#,
        );
        round_trip(
            r#"
            (at "01/01/2017")
            window = 1 min
            step = 10 sec
            proc p read ip ipp
            return p, count(distinct ipp) as freq
            group by p
            having freq > 2 * (freq + freq[1] + freq[2]) / 3
            "#,
        );
        round_trip(
            r#"
            forward: proc p1["%/bin/cp%", agentid = 2] ->[write] file f1["%x%"]
            <-[read] proc p2["%apache%"] ->[connect] proc p3[agentid = 3]
            return f1, p1, p2, p3
            "#,
        );
        round_trip(
            "proc p1 !read && !write file f1 as e1[amount > 1000] return count distinct p1 top 3",
        );
        round_trip(
            r#"proc p1 read file f1 as e1 (from "2017-01-01" to "2017-01-05") return p1 sort by p1 desc"#,
        );
    }

    #[test]
    fn printed_form_is_parsable_text() {
        let q = parse("proc p read ip i[dstip = \"1.2.3.4\"] return p").unwrap();
        let s = to_source(&q);
        assert!(s.contains("proc p read ip i[dstip = \"1.2.3.4\"]"));
        assert!(s.contains("return p"));
    }
}
