//! Recursive-descent parser for AIQL (paper Grammar 1).
//!
//! AIQL keywords are contextual: an identifier like `read` is an operation
//! in pattern position and a plain name elsewhere. The parser resolves this
//! with one-token lookahead plus a small amount of backtracking when
//! distinguishing multievent bodies from dependency chains.

use crate::ast::*;
use crate::err::{AiqlError, Span};
use crate::lex::{lex, Tok, Token};
use aiql_model::{EntityKind, OpType, TimeUnit};

/// Parses one AIQL query.
pub fn parse(src: &str) -> Result<Query, AiqlError> {
    let toks = {
        // A phase leaf in the session trace tree; inert unless the
        // calling thread is collecting (see `aiql_telemetry::trace`).
        let _lex = aiql_telemetry::trace::span("lex");
        lex(src)?
    };
    let _parse = aiql_telemetry::trace::span("parse");
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    if !p.at_end() {
        return Err(AiqlError::at(
            p.cur_span(),
            format!("unexpected trailing input: `{}`", p.describe_cur()),
        ));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

const ENTITY_KWS: [&str; 5] = ["proc", "process", "file", "ip", "conn"];

fn is_op_keyword(s: &str) -> bool {
    OpType::parse_keyword(s).is_some()
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.tok)
    }

    fn cur_span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .or_else(|| self.toks.last().map(|t| t.span))
            .unwrap_or_default()
    }

    fn prev_span(&self) -> Span {
        self.toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn describe_cur(&self) -> String {
        match self.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            Some(t) => format!("{t:?}"),
            None => "end of input".into(),
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<Span, AiqlError> {
        if self.peek() == Some(t) {
            let span = self.cur_span();
            self.pos += 1;
            Ok(span)
        } else {
            Err(AiqlError::at(
                self.cur_span(),
                format!("expected {what}, found `{}`", self.describe_cur()),
            ))
        }
    }

    /// Consumes a case-insensitive keyword identifier.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn peek_kw_at(&self, off: usize, kw: &str) -> bool {
        matches!(self.peek_at(off), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), AiqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(AiqlError::at(
                self.cur_span(),
                format!("expected `{kw}`, found `{}`", self.describe_cur()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), AiqlError> {
        match self.bump() {
            Some(Token {
                tok: Tok::Ident(s),
                span,
            }) => Ok((s, span)),
            other => Err(AiqlError::at(
                other.map(|t| t.span).unwrap_or_else(|| self.prev_span()),
                format!("expected {what}"),
            )),
        }
    }

    fn peek_entity_kw(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s))
            if ENTITY_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)))
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek()? {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    fn literal(&mut self) -> Result<(Lit, Span), AiqlError> {
        let neg = self.eat(&Tok::Minus);
        match self.bump() {
            Some(Token {
                tok: Tok::Str(s),
                span,
            }) if !neg => Ok((Lit::Str(s), span)),
            Some(Token {
                tok: Tok::Param(name),
                span,
            }) if !neg => Ok((Lit::Param(name), span)),
            Some(Token {
                tok: Tok::Int(i),
                span,
            }) => Ok((Lit::Int(if neg { -i } else { i }), span)),
            Some(Token {
                tok: Tok::Float(f),
                span,
            }) => Ok((Lit::Float(if neg { -f } else { f }), span)),
            other => Err(AiqlError::at(
                other.map(|t| t.span).unwrap_or_else(|| self.cur_span()),
                "expected a literal value",
            )),
        }
    }

    // ----- top level ------------------------------------------------------

    fn query(&mut self) -> Result<Query, AiqlError> {
        let global = self.global_cstrs()?;

        // Dependency with explicit direction?
        if (self.peek_kw("forward") || self.peek_kw("backward"))
            && self.peek_at(1) == Some(&Tok::Colon)
        {
            let dir = if self.eat_kw("forward") {
                Direction::Forward
            } else {
                self.expect_kw("backward")?;
                Direction::Backward
            };
            self.expect(&Tok::Colon, "`:` after direction")?;
            return Ok(Query::Dependency(self.dependency(global, dir)?));
        }

        // Lookahead: parse one entity pattern; an arrow next means a
        // dependency chain with the default (forward) direction.
        let save = self.pos;
        if self.peek_entity_kw() {
            let _probe = self.entity_pat()?;
            let is_dep = matches!(self.peek(), Some(Tok::Arrow) | Some(Tok::BackArrow));
            self.pos = save;
            if is_dep {
                return Ok(Query::Dependency(
                    self.dependency(global, Direction::Forward)?,
                ));
            }
        }
        Ok(Query::Multievent(self.multievent(global)?))
    }

    fn global_cstrs(&mut self) -> Result<Vec<GlobalCstr>, AiqlError> {
        let mut out = Vec::new();
        loop {
            // Optional separating comma between global constraints.
            if !out.is_empty() && self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                continue;
            }
            if self.eat(&Tok::LParen) {
                let w = self.time_window()?;
                self.expect(&Tok::RParen, "`)` after time window")?;
                out.push(GlobalCstr::Window(w));
                continue;
            }
            // `window = <dur>` / `step = <dur>`.
            if (self.peek_kw("window") || self.peek_kw("step")) && self.peek_at(1) == Some(&Tok::Eq)
            {
                let is_window = self.peek_kw("window");
                let (_, span) = self.ident("window/step")?;
                self.expect(&Tok::Eq, "`=`")?;
                let d = self.duration()?;
                out.push(if is_window {
                    GlobalCstr::SlideWindow { length: d, span }
                } else {
                    GlobalCstr::SlideStep { length: d, span }
                });
                continue;
            }
            // `attr = value` / `attr in (v, ...)` — but NOT an entity pattern
            // or clause keyword.
            if let Some(Tok::Ident(name)) = self.peek() {
                let name = name.clone();
                if self.peek_entity_kw()
                    || ["with", "return", "forward", "backward"]
                        .iter()
                        .any(|k| name.eq_ignore_ascii_case(k))
                {
                    break;
                }
                if matches!(
                    self.peek_at(1),
                    Some(Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge)
                ) {
                    let (attr, span) = self.ident("attribute")?;
                    let op = self.cmp_op().expect("peeked comparison");
                    let (value, vspan) = self.literal()?;
                    out.push(GlobalCstr::Attr {
                        attr,
                        op,
                        value,
                        span: span.merge(vspan),
                    });
                    continue;
                }
                if self.peek_kw_at(1, "in") {
                    let (attr, span) = self.ident("attribute")?;
                    self.expect_kw("in")?;
                    self.expect(&Tok::LParen, "`(`")?;
                    let mut values = Vec::new();
                    loop {
                        values.push(self.literal()?.0);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(&Tok::RParen, "`)`")?;
                    out.push(GlobalCstr::AttrIn {
                        attr,
                        values,
                        span: span.merge(end),
                    });
                    continue;
                }
            }
            break;
        }
        Ok(out)
    }

    /// A window datetime: a quoted string, or a `$name` parameter stored in
    /// its source spelling (`$name`) and substituted at bind time.
    fn window_datetime(&mut self, after: &str) -> Result<(String, Span), AiqlError> {
        match self.bump() {
            Some(Token {
                tok: Tok::Str(s),
                span,
            }) => Ok((s, span)),
            Some(Token {
                tok: Tok::Param(name),
                span,
            }) => Ok((format!("${name}"), span)),
            other => Err(AiqlError::at(
                other.map(|t| t.span).unwrap_or_else(|| self.prev_span()),
                format!("expected a quoted datetime after `{after}`"),
            )),
        }
    }

    fn time_window(&mut self) -> Result<TimeWindow, AiqlError> {
        if self.eat_kw("at") {
            let start = self.prev_span();
            let (datetime, span) = self.window_datetime("at")?;
            Ok(TimeWindow::At {
                datetime,
                span: start.merge(span),
            })
        } else if self.eat_kw("from") {
            let start = self.prev_span();
            let (from, _) = self.window_datetime("from")?;
            self.expect_kw("to")?;
            let (to, span) = self.window_datetime("to")?;
            Ok(TimeWindow::FromTo {
                from,
                to,
                span: start.merge(span),
            })
        } else {
            Err(AiqlError::at(
                self.cur_span(),
                "expected `at` or `from ... to ...` in time window",
            ))
        }
    }

    fn duration(&mut self) -> Result<DurationLit, AiqlError> {
        let (count, span) = match self.bump() {
            Some(Token {
                tok: Tok::Int(i),
                span,
            }) => (i, span),
            other => {
                return Err(AiqlError::at(
                    other.map(|t| t.span).unwrap_or_else(|| self.cur_span()),
                    "expected a duration count",
                ))
            }
        };
        let (unit_name, uspan) = self.ident("a time unit (sec, min, hour, ...)")?;
        let unit = TimeUnit::parse(&unit_name).ok_or_else(|| {
            AiqlError::at(uspan, format!("unknown time unit `{unit_name}`"))
                .with_help("valid units: ms, sec, min, hour, day")
        })?;
        let _ = span;
        Ok(DurationLit { count, unit })
    }

    // ----- multievent -----------------------------------------------------

    fn multievent(&mut self, global: Vec<GlobalCstr>) -> Result<MultieventQuery, AiqlError> {
        let mut q = MultieventQuery {
            global,
            ..MultieventQuery::default()
        };
        while self.peek_entity_kw() {
            q.patterns.push(self.event_pattern()?);
        }
        if q.patterns.is_empty() {
            // Attempt an entity pattern anyway to produce a precise error
            // (e.g. "unknown entity type `socket`").
            if matches!(self.peek(), Some(Tok::Ident(s)) if !s.eq_ignore_ascii_case("return")) {
                self.entity_pat()?;
            }
            return Err(AiqlError::at(
                self.cur_span(),
                "expected at least one event pattern (e.g. `proc p1 read file f1`)",
            ));
        }
        if self.eat_kw("with") {
            loop {
                q.relations.push(self.relation()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        q.ret = self.return_clause()?;
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                q.group_by.push(self.ret_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.filters(&mut q.having, &mut q.sort_by, &mut q.top, true)?;
        Ok(q)
    }

    fn event_pattern(&mut self) -> Result<EventPattern, AiqlError> {
        let start = self.cur_span();
        let subject = self.entity_pat()?;
        let op = self.op_expr()?;
        let object = self.entity_pat()?;
        let mut evt_var = None;
        let mut evt_cstr = None;
        if self.eat_kw("as") {
            let (v, _) = self.ident("event identifier")?;
            evt_var = Some(v);
            if self.eat(&Tok::LBracket) {
                evt_cstr = Some(self.attr_cstr_or()?);
                self.expect(&Tok::RBracket, "`]`")?;
            }
        }
        let mut window = None;
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            window = Some(self.time_window()?);
            self.expect(&Tok::RParen, "`)` after time window")?;
        }
        Ok(EventPattern {
            subject,
            op,
            object,
            evt_var,
            evt_cstr,
            window,
            span: start.merge(self.prev_span()),
        })
    }

    fn entity_pat(&mut self) -> Result<EntityPat, AiqlError> {
        let (kw, start) = self.ident("entity type (proc, file, ip)")?;
        let kind = EntityKind::parse_keyword(&kw).ok_or_else(|| {
            AiqlError::at(start, format!("unknown entity type `{kw}`"))
                .with_help("valid entity types: proc, file, ip")
        })?;
        // Optional variable: an identifier that is not an operation keyword,
        // an entity keyword, or a clause keyword.
        let mut var = None;
        if let Some(Tok::Ident(s)) = self.peek() {
            let s = s.clone();
            let reserved = is_op_keyword(&s)
                || ENTITY_KWS.iter().any(|k| s.eq_ignore_ascii_case(k))
                || ["as", "with", "return", "group", "having", "sort", "top"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k));
            if !reserved {
                self.pos += 1;
                var = Some(s);
            }
        }
        let mut cstr = None;
        if self.eat(&Tok::LBracket) {
            cstr = Some(self.attr_cstr_or()?);
            self.expect(&Tok::RBracket, "`]` after attribute constraints")?;
        }
        Ok(EntityPat {
            kind,
            var,
            cstr,
            span: start.merge(self.prev_span()),
        })
    }

    fn op_expr(&mut self) -> Result<OpExpr, AiqlError> {
        let mut e = self.op_and()?;
        while self.eat(&Tok::OrOr) {
            e = OpExpr::Or(Box::new(e), Box::new(self.op_and()?));
        }
        Ok(e)
    }

    fn op_and(&mut self) -> Result<OpExpr, AiqlError> {
        let mut e = self.op_unary()?;
        while self.eat(&Tok::AndAnd) {
            e = OpExpr::And(Box::new(e), Box::new(self.op_unary()?));
        }
        Ok(e)
    }

    fn op_unary(&mut self) -> Result<OpExpr, AiqlError> {
        if self.eat(&Tok::Bang) {
            return Ok(OpExpr::Not(Box::new(self.op_unary()?)));
        }
        if self.eat(&Tok::LParen) {
            let e = self.op_expr()?;
            self.expect(&Tok::RParen, "`)` in operation expression")?;
            return Ok(e);
        }
        let (name, span) = self.ident("an operation (read, write, start, ...)")?;
        Ok(OpExpr::Op(name, span))
    }

    fn attr_cstr_or(&mut self) -> Result<AttrCstr, AiqlError> {
        let mut e = self.attr_cstr_and()?;
        while self.eat(&Tok::OrOr) {
            e = AttrCstr::Or(Box::new(e), Box::new(self.attr_cstr_and()?));
        }
        Ok(e)
    }

    fn attr_cstr_and(&mut self) -> Result<AttrCstr, AiqlError> {
        let mut e = self.attr_cstr_unary()?;
        // `,` works as a conjunction separator inside brackets too, as in
        // `p1["%/bin/cp%", agentid = 2]` (paper Query 3).
        while self.eat(&Tok::AndAnd) || self.eat(&Tok::Comma) {
            e = AttrCstr::And(Box::new(e), Box::new(self.attr_cstr_unary()?));
        }
        Ok(e)
    }

    fn attr_cstr_unary(&mut self) -> Result<AttrCstr, AiqlError> {
        if self.eat(&Tok::Bang) {
            return Ok(AttrCstr::Not(Box::new(self.attr_cstr_unary()?)));
        }
        if self.eat(&Tok::LParen) {
            let e = self.attr_cstr_or()?;
            self.expect(&Tok::RParen, "`)` in attribute constraint")?;
            return Ok(e);
        }
        // `attr op value` | `attr [not] in (...)` | bare value.
        if let Some(Tok::Ident(_)) = self.peek() {
            let (attr, span) = self.ident("attribute")?;
            if let Some(op) = self.cmp_op() {
                let (value, vspan) = self.literal()?;
                return Ok(AttrCstr::Cmp {
                    attr,
                    op,
                    value,
                    span: span.merge(vspan),
                });
            }
            let neg = self.eat_kw("not");
            if self.eat_kw("in") {
                self.expect(&Tok::LParen, "`(` after in")?;
                let mut values = Vec::new();
                loop {
                    values.push(self.literal()?.0);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                let end = self.expect(&Tok::RParen, "`)` after value list")?;
                return Ok(AttrCstr::In {
                    attr,
                    neg,
                    values,
                    span: span.merge(end),
                });
            }
            return Err(AiqlError::at(
                span,
                format!("expected a comparison or `in` after attribute `{attr}`"),
            ));
        }
        let (value, span) = self.literal()?;
        Ok(AttrCstr::Bare {
            neg: false,
            value,
            span,
        })
    }

    fn attr_ref(&mut self) -> Result<AttrRef, AiqlError> {
        let (id, span) = self.ident("an entity or event identifier")?;
        let mut attr = None;
        let mut end = span;
        if self.eat(&Tok::Dot) {
            let (a, aspan) = self.ident("attribute name")?;
            attr = Some(a);
            end = aspan;
        }
        Ok(AttrRef {
            id,
            attr,
            span: span.merge(end),
        })
    }

    fn relation(&mut self) -> Result<Relation, AiqlError> {
        let left = self.attr_ref()?;
        // Temporal?
        for (kw, kind) in [
            ("before", TempKind::Before),
            ("after", TempKind::After),
            ("within", TempKind::Within),
        ] {
            if self.peek_kw(kw) {
                let start = left.span;
                if left.attr.is_some() {
                    return Err(AiqlError::at(
                        left.span,
                        "temporal relationships take event IDs, not attribute references",
                    ));
                }
                self.pos += 1;
                let mut range = None;
                if self.eat(&Tok::LBracket) {
                    let (lo, _) = self.literal()?;
                    self.expect(&Tok::Minus, "`-` in time range")?;
                    let (hi, _) = self.literal()?;
                    let (unit_name, uspan) = self.ident("time unit")?;
                    let unit = TimeUnit::parse(&unit_name).ok_or_else(|| {
                        AiqlError::at(uspan, format!("unknown time unit `{unit_name}`"))
                    })?;
                    self.expect(&Tok::RBracket, "`]` after time range")?;
                    let lo = lit_int(&lo, uspan)?;
                    let hi = lit_int(&hi, uspan)?;
                    range = Some((lo, hi, unit));
                }
                let (right, rspan) = self.ident("event identifier")?;
                return Ok(Relation::Temporal {
                    left: left.id,
                    kind,
                    range,
                    right,
                    span: start.merge(rspan),
                });
            }
        }
        let op = self.cmp_op().ok_or_else(|| {
            AiqlError::at(
                self.cur_span(),
                "expected a comparison or temporal keyword (before/after/within) in relationship",
            )
        })?;
        let right = self.attr_ref()?;
        Ok(Relation::Attr { left, op, right })
    }

    fn return_clause(&mut self) -> Result<ReturnClause, AiqlError> {
        self.expect_kw("return")?;
        let mut ret = ReturnClause::default();
        // `count` / `distinct` flags (either or both; `count` first).
        if self.peek_kw("count") && !matches!(self.peek_at(1), Some(Tok::LParen)) {
            self.pos += 1;
            ret.count = true;
        }
        if self.peek_kw("distinct") {
            self.pos += 1;
            ret.distinct = true;
        }
        loop {
            let expr = self.ret_expr()?;
            let mut rename = None;
            if self.eat_kw("as") {
                rename = Some(self.ident("name after `as`")?.0);
            }
            ret.items.push(RetItem { expr, rename });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(ret)
    }

    fn ret_expr(&mut self) -> Result<RetExpr, AiqlError> {
        if let Some(Tok::Ident(name)) = self.peek() {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let (Some(func), Some(Tok::LParen)) = (func, self.peek_at(1)) {
                let (_, span) = self.ident("aggregate")?;
                self.expect(&Tok::LParen, "`(`")?;
                let distinct = self.eat_kw("distinct");
                let arg = self.attr_ref()?;
                let end = self.expect(&Tok::RParen, "`)` after aggregate argument")?;
                return Ok(RetExpr::Agg {
                    func,
                    distinct,
                    arg,
                    span: span.merge(end),
                });
            }
        }
        Ok(RetExpr::Ref(self.attr_ref()?))
    }

    fn filters(
        &mut self,
        having: &mut Option<HavingExpr>,
        sort_by: &mut Vec<(RetExpr, bool)>,
        top: &mut Option<usize>,
        allow_having: bool,
    ) -> Result<(), AiqlError> {
        loop {
            if allow_having && self.eat_kw("having") {
                if having.is_some() {
                    return Err(AiqlError::at(self.prev_span(), "duplicate `having` clause"));
                }
                *having = Some(self.having_expr()?);
            } else if self.peek_kw("sort") {
                self.pos += 1;
                self.expect_kw("by")?;
                let mut items = Vec::new();
                loop {
                    items.push(self.ret_expr()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                sort_by.extend(items.into_iter().map(|i| (i, asc)));
            } else if self.eat_kw("top") {
                match self.bump() {
                    Some(Token {
                        tok: Tok::Int(n), ..
                    }) if n >= 0 => *top = Some(n as usize),
                    other => {
                        return Err(AiqlError::at(
                            other.map(|t| t.span).unwrap_or_else(|| self.cur_span()),
                            "expected a row count after `top`",
                        ))
                    }
                }
            } else {
                break;
            }
        }
        Ok(())
    }

    // ----- having / arithmetic ---------------------------------------------

    fn having_expr(&mut self) -> Result<HavingExpr, AiqlError> {
        let mut e = self.having_and()?;
        while self.eat(&Tok::OrOr) {
            e = HavingExpr::Or(Box::new(e), Box::new(self.having_and()?));
        }
        Ok(e)
    }

    fn having_and(&mut self) -> Result<HavingExpr, AiqlError> {
        let mut e = self.having_unary()?;
        while self.eat(&Tok::AndAnd) {
            e = HavingExpr::And(Box::new(e), Box::new(self.having_unary()?));
        }
        Ok(e)
    }

    fn having_unary(&mut self) -> Result<HavingExpr, AiqlError> {
        if self.eat(&Tok::Bang) {
            return Ok(HavingExpr::Not(Box::new(self.having_unary()?)));
        }
        // A leading `(` may parenthesize a whole boolean expression, as in
        // `having (amt > 2 * amt[1])` — try that first, then fall back to a
        // parenthesized arithmetic operand.
        if self.peek() == Some(&Tok::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.having_expr() {
                if self.eat(&Tok::RParen) {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let left = self.arith()?;
        let op = self
            .cmp_op()
            .ok_or_else(|| AiqlError::at(self.cur_span(), "expected a comparison in `having`"))?;
        let right = self.arith()?;
        Ok(HavingExpr::Cmp { op, left, right })
    }

    fn arith(&mut self) -> Result<ArithExpr, AiqlError> {
        let mut e = self.arith_term()?;
        loop {
            if self.eat(&Tok::Plus) {
                e = ArithExpr::Add(Box::new(e), Box::new(self.arith_term()?));
            } else if self.eat(&Tok::Minus) {
                e = ArithExpr::Sub(Box::new(e), Box::new(self.arith_term()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn arith_term(&mut self) -> Result<ArithExpr, AiqlError> {
        let mut e = self.arith_factor()?;
        loop {
            if self.eat(&Tok::Star) {
                e = ArithExpr::Mul(Box::new(e), Box::new(self.arith_factor()?));
            } else if self.eat(&Tok::Slash) {
                e = ArithExpr::Div(Box::new(e), Box::new(self.arith_factor()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn arith_factor(&mut self) -> Result<ArithExpr, AiqlError> {
        if self.eat(&Tok::Minus) {
            return Ok(ArithExpr::Neg(Box::new(self.arith_factor()?)));
        }
        if self.eat(&Tok::LParen) {
            let e = self.arith()?;
            self.expect(&Tok::RParen, "`)` in arithmetic")?;
            return Ok(e);
        }
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(ArithExpr::Num(i as f64))
            }
            Some(Tok::Float(f)) => {
                self.pos += 1;
                Ok(ArithExpr::Num(f))
            }
            Some(Tok::Ident(name)) => {
                // Moving-average call?
                let ma = match name.to_ascii_lowercase().as_str() {
                    "sma" => Some(MaKind::Sma),
                    "cma" => Some(MaKind::Cma),
                    "wma" => Some(MaKind::Wma),
                    "ewma" => Some(MaKind::Ewma),
                    _ => None,
                };
                if let (Some(kind), Some(Tok::LParen)) = (ma, self.peek_at(1)) {
                    let (_, span) = self.ident("moving average")?;
                    self.expect(&Tok::LParen, "`(`")?;
                    let (arg, _) = self.ident("value name")?;
                    let mut param = match kind {
                        MaKind::Sma | MaKind::Wma => 3.0,
                        MaKind::Ewma => 0.9,
                        MaKind::Cma => 0.0,
                    };
                    if self.eat(&Tok::Comma) {
                        param = match self.bump() {
                            Some(Token {
                                tok: Tok::Int(i), ..
                            }) => i as f64,
                            Some(Token {
                                tok: Tok::Float(f), ..
                            }) => f,
                            other => {
                                return Err(AiqlError::at(
                                    other.map(|t| t.span).unwrap_or(span),
                                    "expected a numeric parameter",
                                ))
                            }
                        };
                    }
                    let end = self.expect(&Tok::RParen, "`)` after moving average")?;
                    return Ok(ArithExpr::MovAvg {
                        kind,
                        name: arg,
                        param,
                        span: span.merge(end),
                    });
                }
                // History reference `name[k]`?
                if self.peek_at(1) == Some(&Tok::LBracket) {
                    let (nm, span) = self.ident("value name")?;
                    self.expect(&Tok::LBracket, "`[`")?;
                    let back = match self.bump() {
                        Some(Token {
                            tok: Tok::Int(i), ..
                        }) if i >= 0 => i as usize,
                        other => {
                            return Err(AiqlError::at(
                                other.map(|t| t.span).unwrap_or(span),
                                "expected a non-negative window offset",
                            ))
                        }
                    };
                    let end = self.expect(&Tok::RBracket, "`]` after history offset")?;
                    return Ok(ArithExpr::Hist {
                        name: nm,
                        back,
                        span: span.merge(end),
                    });
                }
                Ok(ArithExpr::Ref(self.attr_ref()?))
            }
            _ => Err(AiqlError::at(
                self.cur_span(),
                "expected an arithmetic operand",
            )),
        }
    }

    // ----- dependency -------------------------------------------------------

    fn dependency(
        &mut self,
        global: Vec<GlobalCstr>,
        direction: Direction,
    ) -> Result<DependencyQuery, AiqlError> {
        let mut entities = vec![self.entity_pat()?];
        let mut edges = Vec::new();
        loop {
            let dir = if self.eat(&Tok::Arrow) {
                EdgeDir::Right
            } else if self.eat(&Tok::BackArrow) {
                EdgeDir::Left
            } else {
                break;
            };
            self.expect(&Tok::LBracket, "`[` before edge operation")?;
            let op = self.op_expr()?;
            self.expect(&Tok::RBracket, "`]` after edge operation")?;
            entities.push(self.entity_pat()?);
            edges.push((dir, op));
        }
        if edges.is_empty() {
            return Err(AiqlError::at(
                self.cur_span(),
                "dependency query needs at least one `->[op]` or `<-[op]` edge",
            ));
        }
        let ret = self.return_clause()?;
        let mut sort_by = Vec::new();
        let mut top = None;
        let mut having = None;
        self.filters(&mut having, &mut sort_by, &mut top, false)?;
        Ok(DependencyQuery {
            global,
            direction,
            entities,
            edges,
            ret,
            sort_by,
            top,
        })
    }
}

fn lit_int(l: &Lit, span: Span) -> Result<i64, AiqlError> {
    match l {
        Lit::Int(i) => Ok(*i),
        _ => Err(AiqlError::at(span, "expected an integer in time range")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multievent(src: &str) -> MultieventQuery {
        match parse(src).unwrap() {
            Query::Multievent(q) => q,
            other => panic!("expected multievent, got {other:?}"),
        }
    }

    fn dependency(src: &str) -> DependencyQuery {
        match parse(src).unwrap() {
            Query::Dependency(q) => q,
            other => panic!("expected dependency, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_1_cve() {
        let q = multievent(
            r#"
            agentid = 1
            (at "01/01/2017")
            proc p1 start proc p2["%telnet%"] as evt1
            proc p3 start ip ipp[dstport = 4444] as evt2
            proc p4["%apache%"] read file f1["/var/www%"] as evt3
            with p2 = p3,
                 evt1 before evt2, evt3 after evt2
            return p1, p2, p4, f1
            "#,
        );
        assert_eq!(q.global.len(), 2);
        assert_eq!(q.patterns.len(), 3);
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.ret.items.len(), 4);
        assert_eq!(q.patterns[0].subject.var.as_deref(), Some("p1"));
        assert_eq!(q.patterns[1].object.kind, EntityKind::NetConn);
        assert!(matches!(q.relations[0], Relation::Attr { .. }));
        assert!(matches!(
            q.relations[1],
            Relation::Temporal {
                kind: TempKind::Before,
                ..
            }
        ));
    }

    #[test]
    fn paper_query_2_command_history() {
        let q = multievent(
            r#"
            agentid = 1
            (at "01/01/2017")
            proc p2 start proc p1 as evt1
            proc p3 read file[".viminfo" || ".bash_history"] as evt2
            with p1 = p3, evt1 before evt2
            return p2, p1
            sort by p2, p1
            "#,
        );
        assert_eq!(q.patterns.len(), 2);
        assert!(q.patterns[1].object.var.is_none(), "file ID omitted");
        assert!(matches!(
            q.patterns[1].object.cstr,
            Some(AttrCstr::Or(_, _))
        ));
        assert_eq!(q.sort_by.len(), 2);
        assert!(q.sort_by.iter().all(|(_, asc)| *asc));
    }

    #[test]
    fn paper_query_3_dependency_forward() {
        let q = dependency(
            r#"
            (at "01/01/2017")
            forward: proc p1["%/bin/cp%", agentid = 2] ->[write] file f1["/var/www/%info_stealer%"]
            <-[read] proc p2["%apache%"]
            ->[connect] proc p3[agentid = 3]
            ->[write] file f2["%info_stealer%"]
            return f1, p1, p2, p3, f2
            "#,
        );
        assert_eq!(q.direction, Direction::Forward);
        assert_eq!(q.entities.len(), 5);
        assert_eq!(q.edges.len(), 4);
        assert_eq!(q.edges[1].0, EdgeDir::Left);
        assert!(matches!(q.entities[0].cstr, Some(AttrCstr::And(_, _))));
        assert_eq!(q.ret.items.len(), 5);
    }

    #[test]
    fn paper_query_4_anomaly_sma() {
        let q = multievent(
            r#"
            (at "01/01/2017")
            window = 1 min
            step = 10 sec
            proc p read ip ipp
            return p, count(distinct ipp) as freq
            group by p
            having freq > 2 * (freq + freq[1] + freq[2]) / 3
            "#,
        );
        assert!(q
            .global
            .iter()
            .any(|g| matches!(g, GlobalCstr::SlideWindow { .. })));
        assert!(q
            .global
            .iter()
            .any(|g| matches!(g, GlobalCstr::SlideStep { .. })));
        assert_eq!(q.group_by.len(), 1);
        let h = q.having.unwrap();
        match h {
            HavingExpr::Cmp { op: CmpOp::Gt, .. } => {}
            other => panic!("expected >, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_5_anomaly_avg_amount() {
        let q = multievent(
            r#"
            (at "01/02/2017")
            agentid = 9
            window = 1 min, step = 10 sec
            proc p write ip i[dstip = "10.10.1.129"] as evt
            return p, avg(evt.amount) as amt
            group by p
            having (amt > 2 * (amt + amt[1] + amt[2]) / 3)
            "#,
        );
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].evt_var.as_deref(), Some("evt"));
        match &q.ret.items[1].expr {
            RetExpr::Agg {
                func: AggFunc::Avg,
                arg,
                ..
            } => {
                assert_eq!(arg.id, "evt");
                assert_eq!(arg.attr.as_deref(), Some("amount"));
            }
            other => panic!("expected avg agg, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_7_complete_c5() {
        let q = multievent(
            r#"
            (at "01/02/2017")
            agentid = 9
            proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
            proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
            proc p4["%sbblv.exe"] read file f1 as evt3
            proc p4 read || write ip i1[dstip = "10.10.1.129"] as evt4
            with evt1 before evt2, evt2 before evt3, evt3 before evt4
            return distinct p1, p2, p3, f1, p4, i1
            "#,
        );
        assert_eq!(q.patterns.len(), 4);
        assert!(q.ret.distinct);
        assert_eq!(q.relations.len(), 3);
        // f1 and p4 reused across patterns.
        assert_eq!(q.patterns[2].object.var.as_deref(), Some("f1"));
        assert_eq!(q.patterns[3].subject.var.as_deref(), Some("p4"));
    }

    #[test]
    fn temporal_range_and_within() {
        let q = multievent(
            r#"
            proc p1 read file f1 as evt1
            proc p2 write file f2 as evt2
            with evt1 before[1-2 minutes] evt2, evt1 within[0-5 sec] evt2
            return p1, p2
            "#,
        );
        match &q.relations[0] {
            Relation::Temporal {
                range: Some((1, 2, TimeUnit::Minute)),
                ..
            } => {}
            other => panic!("bad range: {other:?}"),
        }
        match &q.relations[1] {
            Relation::Temporal {
                kind: TempKind::Within,
                ..
            } => {}
            other => panic!("expected within: {other:?}"),
        }
    }

    #[test]
    fn return_count_distinct_flags_and_top() {
        let q = multievent("proc p1 read file f1 return count distinct p1 top 5");
        assert!(q.ret.count);
        assert!(q.ret.distinct);
        assert_eq!(q.top, Some(5));
    }

    #[test]
    fn backward_dependency_and_default_direction() {
        let q = dependency("backward: file f1 <-[write] proc p1 return f1, p1");
        assert_eq!(q.direction, Direction::Backward);
        let q = dependency("proc p1 ->[write] file f1 return p1, f1");
        assert_eq!(q.direction, Direction::Forward);
    }

    #[test]
    fn event_constraints_and_pattern_window() {
        let q = multievent(
            r#"proc p1 write file f1 as evt1[amount > 1000 && failure = 0] (at "01/01/2017") return p1"#,
        );
        assert!(q.patterns[0].evt_cstr.is_some());
        assert!(q.patterns[0].window.is_some());
    }

    #[test]
    fn global_in_list() {
        let q = multievent("agentid in (1, 2, 3) proc p1 read file f1 return p1");
        assert!(matches!(q.global[0], GlobalCstr::AttrIn { ref values, .. } if values.len() == 3));
    }

    #[test]
    fn error_messages_have_spans() {
        let err = parse(r#"proc p1["unclosed read file f1 return p1"#).unwrap_err();
        assert!(err.span.is_some());

        let err = parse("socket s1 read file f1 return s1").unwrap_err();
        assert!(err.message.contains("unknown entity type"));

        let err = parse("proc p1 read file f1").unwrap_err();
        assert!(err.message.contains("return"), "missing return: {err}");

        let err = parse("proc p1 read file f1 return p1 garbage extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn ewma_having_expression() {
        let q = multievent(
            r#"
            window = 1 min
            step = 10 sec
            proc p read ip i
            return p, count(distinct i) as freq
            group by p
            having (freq - EWMA(freq, 0.9)) / EWMA(freq, 0.9) > 0.2
            "#,
        );
        let h = q.having.unwrap();
        match h {
            HavingExpr::Cmp {
                op: CmpOp::Gt,
                left,
                ..
            } => match left {
                ArithExpr::Div(num, den) => {
                    assert!(matches!(*num, ArithExpr::Sub(_, _)));
                    assert!(matches!(
                        *den,
                        ArithExpr::MovAvg {
                            kind: MaKind::Ewma,
                            ..
                        }
                    ));
                }
                other => panic!("expected division, got {other:?}"),
            },
            other => panic!("expected cmp, got {other:?}"),
        }
    }

    #[test]
    fn not_operation_expression() {
        let q = multievent("proc p1 !read && !write file f1 return p1");
        assert!(q.patterns[0].op.admits("execute"));
        assert!(!q.patterns[0].op.admits("read"));
    }
}
