//! Abstract syntax of AIQL queries (paper Grammar 1).

use crate::err::Span;
use aiql_model::{EntityKind, TimeUnit};

/// Comparison operators in constraints and relationships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A literal value in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Str(String),
    Int(i64),
    Float(f64),
    /// A named placeholder (`$name`) to be bound before analysis — the
    /// prepared-statement hook (see `crate::prepare`).
    Param(String),
}

/// A parsed AIQL query: multievent (which subsumes anomaly queries — an
/// anomaly query is a multievent query with a sliding-window global
/// constraint) or dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Multievent(MultieventQuery),
    Dependency(DependencyQuery),
}

/// Global constraints preceding the query body.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalCstr {
    /// A bare attribute constraint applying to all patterns (e.g.
    /// `agentid = 1`).
    Attr {
        attr: String,
        op: CmpOp,
        value: Lit,
        span: Span,
    },
    /// `agentid in (1, 2, 3)`.
    AttrIn {
        attr: String,
        values: Vec<Lit>,
        span: Span,
    },
    /// A global time window: `(at "...")` or `(from "..." to "...")`.
    Window(TimeWindow),
    /// Sliding-window length: `window = 1 min`.
    SlideWindow { length: DurationLit, span: Span },
    /// Sliding-window step: `step = 10 sec`.
    SlideStep { length: DurationLit, span: Span },
}

/// A literal duration, e.g. `1 min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationLit {
    pub count: i64,
    pub unit: TimeUnit,
}

/// A time window constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeWindow {
    /// `at "date"` — the whole day (or instant range) of the literal.
    At { datetime: String, span: Span },
    /// `from "datetime" to "datetime"`.
    FromTo {
        from: String,
        to: String,
        span: Span,
    },
}

/// A multievent query (paper Sec. 4.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultieventQuery {
    pub global: Vec<GlobalCstr>,
    pub patterns: Vec<EventPattern>,
    pub relations: Vec<Relation>,
    pub ret: ReturnClause,
    pub group_by: Vec<RetExpr>,
    pub having: Option<HavingExpr>,
    pub sort_by: Vec<(RetExpr, bool)>,
    pub top: Option<usize>,
}

/// One event pattern: `subject op object [as evt[...]] [(twind)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventPattern {
    pub subject: EntityPat,
    pub op: OpExpr,
    pub object: EntityPat,
    pub evt_var: Option<String>,
    pub evt_cstr: Option<AttrCstr>,
    pub window: Option<TimeWindow>,
    pub span: Span,
}

/// An entity pattern: type, optional variable, optional constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityPat {
    pub kind: EntityKind,
    pub var: Option<String>,
    pub cstr: Option<AttrCstr>,
    pub span: Span,
}

/// Operation expression with boolean connectives, e.g. `read || write`.
#[derive(Debug, Clone, PartialEq)]
pub enum OpExpr {
    Op(String, Span),
    Not(Box<OpExpr>),
    And(Box<OpExpr>, Box<OpExpr>),
    Or(Box<OpExpr>, Box<OpExpr>),
}

/// Attribute constraints inside `[...]`.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrCstr {
    /// `attr op value`.
    Cmp {
        attr: String,
        op: CmpOp,
        value: Lit,
        span: Span,
    },
    /// A bare (possibly negated) value with the attribute inferred, e.g.
    /// `"%cmd.exe"` or `!"svchost.exe"`.
    Bare {
        neg: bool,
        value: Lit,
        span: Span,
    },
    /// `attr [not] in (v1, v2, ...)`.
    In {
        attr: String,
        neg: bool,
        values: Vec<Lit>,
        span: Span,
    },
    Not(Box<AttrCstr>),
    And(Box<AttrCstr>, Box<AttrCstr>),
    Or(Box<AttrCstr>, Box<AttrCstr>),
}

/// A reference `id` or `id.attr`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrRef {
    pub id: String,
    pub attr: Option<String>,
    pub span: Span,
}

/// Event relationships in the `with` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Relation {
    /// `ref op ref`, e.g. `p1 = p3` or `p2.exe_name != p4.exe_name`.
    Attr {
        left: AttrRef,
        op: CmpOp,
        right: AttrRef,
    },
    /// `evt1 before[1-2 min] evt2` / `after` / `within`.
    Temporal {
        left: String,
        kind: TempKind,
        range: Option<(i64, i64, TimeUnit)>,
        right: String,
        span: Span,
    },
}

/// Temporal relationship kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TempKind {
    Before,
    After,
    Within,
}

/// Aggregation functions in return clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Moving-average built-ins for anomaly queries (paper Sec. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaKind {
    /// Simple moving average over the last `param` windows.
    Sma,
    /// Cumulative moving average since the first window.
    Cma,
    /// Weighted moving average over the last `param` windows.
    Wma,
    /// Exponentially weighted moving average with smoothing `param`.
    Ewma,
}

/// The `return` clause.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReturnClause {
    pub count: bool,
    pub distinct: bool,
    pub items: Vec<RetItem>,
}

/// One returned item with optional rename.
#[derive(Debug, Clone, PartialEq)]
pub struct RetItem {
    pub expr: RetExpr,
    pub rename: Option<String>,
}

/// Expressions allowed in `return` and `group by`.
#[derive(Debug, Clone, PartialEq)]
pub enum RetExpr {
    /// `id` or `id.attr`.
    Ref(AttrRef),
    /// `count(distinct x)`, `avg(x)`, ...
    Agg {
        func: AggFunc,
        distinct: bool,
        arg: AttrRef,
        span: Span,
    },
}

/// Having expressions: comparisons over window arithmetic (paper Query 4/5).
#[derive(Debug, Clone, PartialEq)]
pub enum HavingExpr {
    Cmp {
        op: CmpOp,
        left: ArithExpr,
        right: ArithExpr,
    },
    And(Box<HavingExpr>, Box<HavingExpr>),
    Or(Box<HavingExpr>, Box<HavingExpr>),
    Not(Box<HavingExpr>),
}

/// Arithmetic over aggregate results, history states, and moving averages.
#[derive(Debug, Clone, PartialEq)]
pub enum ArithExpr {
    /// A literal number.
    Num(f64),
    /// A named value: a return-item rename (`freq`) or `id.attr` reference.
    Ref(AttrRef),
    /// History state: `freq[2]` = the value two windows ago.
    Hist {
        name: String,
        back: usize,
        span: Span,
    },
    /// Moving average call: `EWMA(freq, 0.9)`, `SMA(freq, 3)`.
    MovAvg {
        kind: MaKind,
        name: String,
        param: f64,
        span: Span,
    },
    Add(Box<ArithExpr>, Box<ArithExpr>),
    Sub(Box<ArithExpr>, Box<ArithExpr>),
    Mul(Box<ArithExpr>, Box<ArithExpr>),
    Div(Box<ArithExpr>, Box<ArithExpr>),
    Neg(Box<ArithExpr>),
}

/// Dependency tracking direction (paper Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Leftmost pattern's events occurred earliest.
    Forward,
    /// Leftmost pattern's events occurred latest.
    Backward,
}

/// Edge direction in a dependency chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDir {
    /// `->[op]`: left entity is the subject.
    Right,
    /// `<-[op]`: right entity is the subject.
    Left,
}

/// A dependency query: a path of entities joined by operation edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyQuery {
    pub global: Vec<GlobalCstr>,
    pub direction: Direction,
    /// `entities[i] --edges[i]-- entities[i+1]`.
    pub entities: Vec<EntityPat>,
    pub edges: Vec<(EdgeDir, OpExpr)>,
    pub ret: ReturnClause,
    pub sort_by: Vec<(RetExpr, bool)>,
    pub top: Option<usize>,
}

impl OpExpr {
    /// Collects all operation names mentioned, for validation.
    pub fn op_names(&self, out: &mut Vec<(String, Span)>) {
        match self {
            OpExpr::Op(name, span) => out.push((name.clone(), *span)),
            OpExpr::Not(e) => e.op_names(out),
            OpExpr::And(a, b) | OpExpr::Or(a, b) => {
                a.op_names(out);
                b.op_names(out);
            }
        }
    }

    /// Evaluates the expression against a concrete operation name.
    pub fn admits(&self, op: &str) -> bool {
        match self {
            OpExpr::Op(name, _) => name.eq_ignore_ascii_case(op),
            OpExpr::Not(e) => !e.admits(op),
            OpExpr::And(a, b) => a.admits(op) && b.admits(op),
            OpExpr::Or(a, b) => a.admits(op) || b.admits(op),
        }
    }
}

impl Lit {
    /// Displays the literal as AIQL source. Double quotes in strings are
    /// escaped so the printed form re-lexes to the same literal.
    ///
    /// One caveat: a string whose content ends in `\` cannot be spelled in
    /// AIQL source at all (the lexer reads `\"` as an escaped quote, so a
    /// trailing backslash would swallow the closing quote). Such values
    /// can only enter through prepared-statement bindings; printing them
    /// yields text that does not re-lex.
    pub fn to_source(&self) -> String {
        match self {
            Lit::Str(s) => format!("\"{}\"", s.replace('"', "\\\"")),
            Lit::Int(i) => i.to_string(),
            Lit::Float(f) => f.to_string(),
            Lit::Param(name) => format!("${name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_expr_admits() {
        let e = OpExpr::Or(
            Box::new(OpExpr::Op("read".into(), Span::default())),
            Box::new(OpExpr::Op("write".into(), Span::default())),
        );
        assert!(e.admits("read"));
        assert!(e.admits("WRITE"));
        assert!(!e.admits("start"));

        let not_read = OpExpr::Not(Box::new(OpExpr::Op("read".into(), Span::default())));
        assert!(!not_read.admits("read"));
        assert!(not_read.admits("write"));
    }

    #[test]
    fn op_names_collected() {
        let e = OpExpr::And(
            Box::new(OpExpr::Op("a".into(), Span::default())),
            Box::new(OpExpr::Not(Box::new(OpExpr::Op(
                "b".into(),
                Span::default(),
            )))),
        );
        let mut names = vec![];
        e.op_names(&mut names);
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn lit_source() {
        assert_eq!(Lit::Str("x%".into()).to_source(), "\"x%\"");
        assert_eq!(Lit::Int(4444).to_source(), "4444");
    }
}
