//! Lexer for AIQL source text.
//!
//! Tokens carry byte spans for diagnostics. Keywords are not distinguished
//! here — AIQL keywords (`proc`, `read`, `with`, `return`, …) are contextual
//! identifiers resolved by the parser, matching the grammar's style.
//! Comments run from `//` to end of line. String literals use double quotes
//! and may contain `%` wildcards.

use crate::err::{AiqlError, Span};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    /// A named query parameter: `$name` (prepared statements).
    Param(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Arrow,
    BackArrow,
    Plus,
    Minus,
    Star,
    Slash,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Lexes a full query; fails on unterminated strings or stray characters.
pub fn lex(src: &str) -> Result<Vec<Token>, AiqlError> {
    let b: Vec<char> = src.chars().collect();
    // Byte offset of each char, for spans over multi-byte input.
    let mut offs = Vec::with_capacity(b.len() + 1);
    let mut acc = 0;
    for c in &b {
        offs.push(acc);
        acc += c.len_utf8();
    }
    offs.push(acc);

    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = offs[i];
        let c = b[i];
        let mut push1 = |tok: Tok, len: usize, i: &mut usize| {
            out.push(Token {
                tok,
                span: Span::new(start, offs[*i + len]),
            });
            *i += len;
        };
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push1(Tok::LParen, 1, &mut i),
            ')' => push1(Tok::RParen, 1, &mut i),
            '[' => push1(Tok::LBracket, 1, &mut i),
            ']' => push1(Tok::RBracket, 1, &mut i),
            ',' => push1(Tok::Comma, 1, &mut i),
            '.' if !b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) => push1(Tok::Dot, 1, &mut i),
            ':' => push1(Tok::Colon, 1, &mut i),
            '=' => push1(Tok::Eq, 1, &mut i),
            '+' => push1(Tok::Plus, 1, &mut i),
            '*' => push1(Tok::Star, 1, &mut i),
            '/' => push1(Tok::Slash, 1, &mut i),
            '!' if b.get(i + 1) == Some(&'=') => push1(Tok::Ne, 2, &mut i),
            '!' => push1(Tok::Bang, 1, &mut i),
            '&' if b.get(i + 1) == Some(&'&') => push1(Tok::AndAnd, 2, &mut i),
            '|' if b.get(i + 1) == Some(&'|') => push1(Tok::OrOr, 2, &mut i),
            '<' if b.get(i + 1) == Some(&'-') => push1(Tok::BackArrow, 2, &mut i),
            '<' if b.get(i + 1) == Some(&'=') => push1(Tok::Le, 2, &mut i),
            '<' => push1(Tok::Lt, 1, &mut i),
            '>' if b.get(i + 1) == Some(&'=') => push1(Tok::Ge, 2, &mut i),
            '>' => push1(Tok::Gt, 1, &mut i),
            '-' if b.get(i + 1) == Some(&'>') => push1(Tok::Arrow, 2, &mut i),
            '-' => push1(Tok::Minus, 1, &mut i),
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match b.get(j) {
                        Some('"') => break,
                        Some('\\') if b.get(j + 1) == Some(&'"') => {
                            s.push('"');
                            j += 2;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            j += 1;
                        }
                        None => {
                            return Err(AiqlError::at(
                                Span::new(start, offs[b.len()]),
                                "unterminated string literal",
                            ))
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    span: Span::new(start, offs[j + 1]),
                });
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let mut j = i;
                let mut has_dot = false;
                while j < b.len() && (b[j].is_ascii_digit() || (b[j] == '.' && !has_dot)) {
                    if b[j] == '.' {
                        // A dot must be followed by a digit to be a decimal
                        // point (so `evt1.attr`-style refs still lex).
                        if !b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                            break;
                        }
                        has_dot = true;
                    }
                    j += 1;
                }
                let text: String = b[i..j].iter().collect();
                let span = Span::new(start, offs[j]);
                let tok = if has_dot {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| AiqlError::at(span, "invalid number"))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| AiqlError::at(span, "invalid number"))?,
                    )
                };
                out.push(Token { tok, span });
                i = j;
            }
            '$' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(AiqlError::at(
                        Span::new(start, offs[i + 1]),
                        "expected a parameter name after `$`",
                    ));
                }
                out.push(Token {
                    tok: Tok::Param(b[i + 1..j].iter().collect()),
                    span: Span::new(start, offs[j]),
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(b[i..j].iter().collect()),
                    span: Span::new(start, offs[j]),
                });
                i = j;
            }
            other => {
                return Err(AiqlError::at(
                    Span::new(start, offs[i + 1]),
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_strings_numbers() {
        assert_eq!(
            kinds(r#"proc p1["%cmd.exe"] 42 3.5"#),
            vec![
                Tok::Ident("proc".into()),
                Tok::Ident("p1".into()),
                Tok::LBracket,
                Tok::Str("%cmd.exe".into()),
                Tok::RBracket,
                Tok::Int(42),
                Tok::Float(3.5),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("agentid = 1 // host id\nreturn p"),
            vec![
                Tok::Ident("agentid".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Ident("return".into()),
                Tok::Ident("p".into()),
            ]
        );
    }

    #[test]
    fn operators_and_arrows() {
        assert_eq!(
            kinds("-> <- && || ! != <= >= < > = + - * /"),
            vec![
                Tok::Arrow,
                Tok::BackArrow,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
            ]
        );
    }

    #[test]
    fn dots_vs_decimals() {
        assert_eq!(
            kinds("evt1.amount 0.9 freq"),
            vec![
                Tok::Ident("evt1".into()),
                Tok::Dot,
                Tok::Ident("amount".into()),
                Tok::Float(0.9),
                Tok::Ident("freq".into()),
            ]
        );
    }

    #[test]
    fn escaped_quotes_and_errors() {
        assert_eq!(kinds(r#""a\"b""#), vec![Tok::Str("a\"b".into())]);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("ab \"cd\" 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 7));
        assert_eq!(toks[2].span, Span::new(8, 10));
    }

    #[test]
    fn params_lex_as_named_placeholders() {
        assert_eq!(
            kinds(r#"agentid = $agent proc p[$pname] return p"#),
            vec![
                Tok::Ident("agentid".into()),
                Tok::Eq,
                Tok::Param("agent".into()),
                Tok::Ident("proc".into()),
                Tok::Ident("p".into()),
                Tok::LBracket,
                Tok::Param("pname".into()),
                Tok::RBracket,
                Tok::Ident("return".into()),
                Tok::Ident("p".into()),
            ]
        );
        assert!(lex("$ x").is_err(), "bare `$` needs a name");
        assert!(lex("$1day").is_ok(), "alphanumeric names allowed");
    }

    #[test]
    fn brackets_in_history_refs() {
        assert_eq!(
            kinds("freq[1]"),
            vec![
                Tok::Ident("freq".into()),
                Tok::LBracket,
                Tok::Int(1),
                Tok::RBracket
            ]
        );
    }
}
