//! Prepared queries: `$name` placeholders, parameter binding, and the
//! normalized-source plan cache.
//!
//! An interactive investigation iterates on near-identical queries — the
//! same pattern with different agent / time-window / attribute constants.
//! [`PreparedQuery::compile`] pays the lexer, parser, and structural
//! analysis once; [`PreparedQuery::bind`] then substitutes concrete values
//! for the `$name` placeholders and produces an executable
//! [`QueryContext`] without touching the source text again. Binding is
//! defined to be *exactly* textual substitution: `prepare(q).bind(v)`
//! produces the same context as compiling the query with every `$name`
//! replaced by the literal spelling of `v` (the differential property
//! `tests/proptest_prepare.rs` checks).
//!
//! Placeholders may stand for:
//!
//! - attribute-constraint values — `proc p[$pname]`, `ip i[dstip = $ip]`,
//!   `as evt[amount > $min]` (string, integer, or float),
//! - global `agentid` constants — `agentid = $agent`, `agentid in ($a, $b)`
//!   (integers),
//! - time-window datetimes — `(at $day)`, `(from $t0 to $t1)` (datetime
//!   strings).
//!
//! Window placeholders are carried in-band as a `$`-prefixed datetime
//! string, so a *quoted* window literal beginning with `$` (e.g.
//! `(at "$day")`) is indistinguishable from — and treated as — a
//! placeholder. Real datetimes never start with `$` (such a literal could
//! only ever fail datetime parsing), so nothing expressible is lost.
//!
//! [`PlanCache`] gives the same amortization to callers that keep sending
//! raw source: a bounded LRU over whitespace/comment-normalized source
//! text, with hit/miss counters surfaced through
//! [`PlanCache::stats`].

use crate::analyze::analyze;
use crate::ast::{AttrCstr, GlobalCstr, Lit, Query, TimeWindow};
use crate::context::QueryContext;
use crate::err::{AiqlError, Span};
use crate::parse::parse;
use std::collections::HashMap;
use std::sync::Arc;

/// What a parameter may be bound to, inferred from its syntactic position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A time-window datetime — must bind to a datetime string.
    Time,
    /// A global `agentid` constant — must bind to an integer.
    Int,
    /// An attribute-constraint value — any scalar literal.
    Scalar,
}

/// One declared parameter of a prepared query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    pub name: String,
    pub kind: ParamKind,
    /// Number of placeholder sites the parameter appears in.
    pub uses: usize,
}

/// Values for binding, built fluently:
/// `ParamValues::new().set("agent", 9).set("pname", "%cmd.exe")`.
#[derive(Debug, Clone, Default)]
pub struct ParamValues {
    vals: Vec<(String, Lit)>,
}

impl ParamValues {
    /// An empty binding (for queries without placeholders).
    pub fn new() -> ParamValues {
        ParamValues::default()
    }

    /// Sets `name` to `value`, replacing any earlier value.
    pub fn set(mut self, name: &str, value: impl Into<Lit>) -> ParamValues {
        self.vals.retain(|(n, _)| n != name);
        self.vals.push((name.to_string(), value.into()));
        self
    }

    /// The bound value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Lit> {
        self.vals.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Whether no values are bound.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The bound names, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.vals.iter().map(|(n, _)| n.as_str())
    }

    /// Renders the binding as `$name = value` pairs — `(none)` when empty
    /// — for logs and the slow-query log.
    pub fn render(&self) -> String {
        if self.vals.is_empty() {
            return "(none)".to_string();
        }
        self.vals
            .iter()
            .map(|(n, v)| {
                let val = match v {
                    Lit::Str(s) => format!("{s:?}"),
                    Lit::Int(i) => i.to_string(),
                    Lit::Float(f) => f.to_string(),
                    Lit::Param(p) => format!("${p}"),
                };
                format!("${n} = {val}")
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl From<i64> for Lit {
    fn from(v: i64) -> Lit {
        Lit::Int(v)
    }
}

impl From<i32> for Lit {
    fn from(v: i32) -> Lit {
        Lit::Int(v as i64)
    }
}

impl From<f64> for Lit {
    fn from(v: f64) -> Lit {
        Lit::Float(v)
    }
}

impl From<&str> for Lit {
    fn from(v: &str) -> Lit {
        Lit::Str(v.to_string())
    }
}

impl From<String> for Lit {
    fn from(v: String) -> Lit {
        Lit::Str(v)
    }
}

/// A compiled AIQL statement: parsed and structurally validated once,
/// bindable many times.
///
/// # Examples
///
/// ```
/// use aiql_core::{ParamValues, PreparedQuery};
///
/// let q = PreparedQuery::compile(
///     "agentid = $agent proc p[$pname] read file f return p, f",
/// )
/// .unwrap();
/// assert_eq!(q.params().len(), 2);
/// let ctx = q
///     .bind(&ParamValues::new().set("agent", 7).set("pname", "%cmd.exe"))
///     .unwrap();
/// assert_eq!(ctx.agents, Some(vec![7]));
/// ```
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    source: String,
    ast: Query,
    params: Vec<ParamSpec>,
    /// The analysis result, computed at compile time when the query has no
    /// placeholders (the common legacy case) so binding is a clone.
    static_ctx: Option<QueryContext>,
}

impl PreparedQuery {
    /// Lexes, parses, and validates `source` once. Queries with `$name`
    /// placeholders are structurally validated (entity kinds, attribute
    /// names, variable resolution) with binding-independent probe values;
    /// binding-dependent errors (an unparsable datetime, an empty window)
    /// surface at [`PreparedQuery::bind`].
    pub fn compile(source: &str) -> Result<PreparedQuery, AiqlError> {
        let ast = parse(source)?;
        let params = collect_params(&ast)?;
        // The analysis phase of the session trace tree (lex and parse are
        // recorded inside `parse`); inert when no collection is active.
        let _analyze = aiql_telemetry::trace::span("analyze");
        let static_ctx = if params.is_empty() {
            Some(analyze(&ast)?)
        } else {
            analyze(&probe_ast(&ast))?;
            None
        };
        Ok(PreparedQuery {
            source: source.to_string(),
            ast,
            params,
            static_ctx,
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The declared parameters, in first-occurrence order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Whether the query declares any placeholder.
    pub fn is_parameterized(&self) -> bool {
        !self.params.is_empty()
    }

    /// The analyzed context of a placeholder-free query (available without
    /// binding; `None` when the query is parameterized).
    pub fn static_ctx(&self) -> Option<&QueryContext> {
        self.static_ctx.as_ref()
    }

    /// The parsed AST (placeholders intact).
    pub fn ast(&self) -> &Query {
        &self.ast
    }

    /// Binds `values` to the placeholders and analyzes the result into an
    /// executable context. Every declared parameter must be bound, and no
    /// undeclared name may be supplied.
    pub fn bind(&self, values: &ParamValues) -> Result<QueryContext, AiqlError> {
        for name in values.names() {
            if !self.params.iter().any(|p| p.name == name) {
                return Err(AiqlError::new(format!(
                    "query declares no parameter `${name}`"
                )));
            }
        }
        if self.params.is_empty() {
            return Ok(self
                .static_ctx
                .clone()
                .expect("placeholder-free queries are analyzed at compile time"));
        }
        for p in &self.params {
            match values.get(&p.name) {
                None => {
                    return Err(
                        AiqlError::new(format!("parameter `${}` is unbound", p.name))
                            .with_help("bind every declared parameter before executing"),
                    )
                }
                Some(Lit::Param(_)) => {
                    return Err(AiqlError::new(format!(
                        "parameter `${}` cannot be bound to another placeholder",
                        p.name
                    )))
                }
                Some(v) => {
                    if p.kind == ParamKind::Time && !matches!(v, Lit::Str(_)) {
                        return Err(AiqlError::new(format!(
                            "parameter `${}` appears in a time window and must be \
                             a datetime string",
                            p.name
                        )));
                    }
                    if p.kind == ParamKind::Int && !matches!(v, Lit::Int(_)) {
                        return Err(AiqlError::new(format!(
                            "parameter `${}` appears as a global agentid and must be \
                             an integer",
                            p.name
                        )));
                    }
                }
            }
        }
        let bound = substitute(&self.ast, values);
        let _analyze = aiql_telemetry::trace::span("analyze");
        analyze(&bound)
    }
}

/// Where a placeholder occurs, which decides its inferred [`ParamKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    /// Time-window datetime position.
    Window,
    /// Global constraint value (`agentid = $a`, `agentid in ($a, $b)`).
    Global,
    /// Attribute-constraint value inside a pattern.
    Value,
}

impl Site {
    fn kind(self) -> ParamKind {
        match self {
            Site::Window => ParamKind::Time,
            Site::Global => ParamKind::Int,
            Site::Value => ParamKind::Scalar,
        }
    }
}

/// The first unbound placeholder of a query, if any — the guard
/// [`analyze`] uses to reject parameterized ASTs that were never bound.
pub fn first_param(q: &Query) -> Option<(String, Span)> {
    let mut found = None;
    visit_params(q, &mut |name, span, _| {
        if found.is_none() {
            found = Some((name.to_string(), span));
        }
    });
    found
}

/// Walks every placeholder site of `q` (constraint values and window
/// datetimes) in source order.
fn visit_params(q: &Query, f: &mut impl FnMut(&str, Span, Site)) {
    fn visit_cstr(c: &AttrCstr, f: &mut dyn FnMut(&str, Span, Site)) {
        match c {
            AttrCstr::Cmp { value, span, .. } | AttrCstr::Bare { value, span, .. } => {
                if let Lit::Param(name) = value {
                    f(name, *span, Site::Value);
                }
            }
            AttrCstr::In { values, span, .. } => {
                for v in values {
                    if let Lit::Param(name) = v {
                        f(name, *span, Site::Value);
                    }
                }
            }
            AttrCstr::Not(inner) => visit_cstr(inner, f),
            AttrCstr::And(a, b) | AttrCstr::Or(a, b) => {
                visit_cstr(a, f);
                visit_cstr(b, f);
            }
        }
    }
    fn visit_window(w: &TimeWindow, f: &mut dyn FnMut(&str, Span, Site)) {
        match w {
            TimeWindow::At { datetime, span } => {
                if let Some(name) = datetime.strip_prefix('$') {
                    f(name, *span, Site::Window);
                }
            }
            TimeWindow::FromTo { from, to, span } => {
                for s in [from, to] {
                    if let Some(name) = s.strip_prefix('$') {
                        f(name, *span, Site::Window);
                    }
                }
            }
        }
    }
    let visit_globals = |globals: &[GlobalCstr], f: &mut dyn FnMut(&str, Span, Site)| {
        for g in globals {
            match g {
                GlobalCstr::Attr { value, span, .. } => {
                    if let Lit::Param(name) = value {
                        f(name, *span, Site::Global);
                    }
                }
                GlobalCstr::AttrIn { values, span, .. } => {
                    for v in values {
                        if let Lit::Param(name) = v {
                            f(name, *span, Site::Global);
                        }
                    }
                }
                GlobalCstr::Window(w) => visit_window(w, f),
                GlobalCstr::SlideWindow { .. } | GlobalCstr::SlideStep { .. } => {}
            }
        }
    };
    match q {
        Query::Multievent(m) => {
            visit_globals(&m.global, f);
            for p in &m.patterns {
                for c in [&p.subject.cstr, &p.object.cstr, &p.evt_cstr]
                    .into_iter()
                    .flatten()
                {
                    visit_cstr(c, f);
                }
                if let Some(w) = &p.window {
                    visit_window(w, f);
                }
            }
        }
        Query::Dependency(d) => {
            visit_globals(&d.global, f);
            for e in &d.entities {
                if let Some(c) = &e.cstr {
                    visit_cstr(c, f);
                }
            }
        }
    }
}

/// Gathers the parameter registry, inferring each name's [`ParamKind`]
/// from its sites. The strongest requirement wins (`Int` over `Scalar`);
/// a name used both in a window and as a value is rejected.
fn collect_params(q: &Query) -> Result<Vec<ParamSpec>, AiqlError> {
    let mut by_name: Vec<ParamSpec> = Vec::new();
    let mut conflict: Option<AiqlError> = None;
    visit_params(q, &mut |name, span, site| {
        let kind = site.kind();
        match by_name.iter_mut().find(|p| p.name == name) {
            Some(existing) => {
                if (existing.kind == ParamKind::Time) != (kind == ParamKind::Time) {
                    conflict.get_or_insert_with(|| {
                        AiqlError::at(
                            span,
                            format!(
                                "parameter `${name}` is used both as a time-window \
                                 datetime and as a value"
                            ),
                        )
                    });
                } else if kind == ParamKind::Int {
                    existing.kind = ParamKind::Int;
                }
                existing.uses += 1;
            }
            None => by_name.push(ParamSpec {
                name: name.to_string(),
                kind,
                uses: 1,
            }),
        }
    });
    match conflict {
        Some(e) => Err(e),
        None => Ok(by_name),
    }
}

/// A copy of `q` with every placeholder replaced by a binding-independent
/// probe, for structural validation at compile time: parameterized windows
/// are *dropped* (their presence affects only the computed time range),
/// global constants probe as `0`, constraint values as a neutral string.
fn probe_ast(q: &Query) -> Query {
    let mut probes = ParamValues::new();
    visit_params(q, &mut |name, _, site| match site {
        // Parameterized windows are dropped below, not probed: probe
        // datetimes could fabricate empty-window errors a real binding
        // would not have.
        Site::Window => {}
        // Global constants must probe as integers (the stronger
        // requirement wins over any value-site probe).
        Site::Global => probes = std::mem::take(&mut probes).set(name, 0i64),
        Site::Value => {
            if probes.get(name).is_none() {
                probes = std::mem::take(&mut probes).set(name, "aiql-probe");
            }
        }
    });
    let mut probed = substitute(q, &probes);
    drop_param_windows(&mut probed);
    probed
}

/// Removes any time window whose datetime is still a placeholder.
fn drop_param_windows(q: &mut Query) {
    let is_param = |w: &TimeWindow| match w {
        TimeWindow::At { datetime, .. } => datetime.starts_with('$'),
        TimeWindow::FromTo { from, to, .. } => from.starts_with('$') || to.starts_with('$'),
    };
    let globals = match q {
        Query::Multievent(m) => &mut m.global,
        Query::Dependency(d) => &mut d.global,
    };
    globals.retain(|g| match g {
        GlobalCstr::Window(w) => !is_param(w),
        _ => true,
    });
    if let Query::Multievent(m) = q {
        for p in &mut m.patterns {
            if p.window.as_ref().is_some_and(is_param) {
                p.window = None;
            }
        }
    }
}

/// A copy of `q` with every bound placeholder replaced by its value.
/// Unbound placeholders are left intact (callers validate beforehand).
fn substitute(q: &Query, values: &ParamValues) -> Query {
    let mut out = q.clone();
    let sub_lit = |l: &mut Lit| {
        if let Lit::Param(name) = l {
            if let Some(v) = values.get(name) {
                *l = v.clone();
            }
        }
    };
    fn sub_cstr(c: &mut AttrCstr, sub: &dyn Fn(&mut Lit)) {
        match c {
            AttrCstr::Cmp { value, .. } | AttrCstr::Bare { value, .. } => sub(value),
            AttrCstr::In { values, .. } => values.iter_mut().for_each(sub),
            AttrCstr::Not(inner) => sub_cstr(inner, sub),
            AttrCstr::And(a, b) | AttrCstr::Or(a, b) => {
                sub_cstr(a, sub);
                sub_cstr(b, sub);
            }
        }
    }
    let sub_window = |w: &mut TimeWindow| {
        let sub_dt = |s: &mut String| {
            if let Some(name) = s.strip_prefix('$') {
                if let Some(Lit::Str(v)) = values.get(name) {
                    *s = v.clone();
                }
            }
        };
        match w {
            TimeWindow::At { datetime, .. } => sub_dt(datetime),
            TimeWindow::FromTo { from, to, .. } => {
                sub_dt(from);
                sub_dt(to);
            }
        }
    };
    let sub_globals = |globals: &mut Vec<GlobalCstr>| {
        for g in globals {
            match g {
                GlobalCstr::Attr { value, .. } => sub_lit(value),
                GlobalCstr::AttrIn { values, .. } => values.iter_mut().for_each(sub_lit),
                GlobalCstr::Window(w) => sub_window(w),
                GlobalCstr::SlideWindow { .. } | GlobalCstr::SlideStep { .. } => {}
            }
        }
    };
    match &mut out {
        Query::Multievent(m) => {
            sub_globals(&mut m.global);
            for p in &mut m.patterns {
                for c in [&mut p.subject.cstr, &mut p.object.cstr, &mut p.evt_cstr]
                    .into_iter()
                    .flatten()
                {
                    sub_cstr(c, &sub_lit);
                }
                if let Some(w) = &mut p.window {
                    sub_window(w);
                }
            }
        }
        Query::Dependency(d) => {
            sub_globals(&mut d.global);
            for e in &mut d.entities {
                if let Some(c) = &mut e.cstr {
                    sub_cstr(c, &sub_lit);
                }
            }
        }
    }
    out
}

/// Normalizes AIQL source for plan-cache keying: comments stripped,
/// whitespace runs collapsed to one space, string literals preserved
/// byte-for-byte.
pub fn normalize_source(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push('"');
                // Mirror the lexer's escape rule exactly: a backslash
                // *immediately followed by* a quote escapes it (any other
                // backslash is literal), so normalization can never end a
                // string at a different byte than lexing would.
                while let Some(d) = chars.next() {
                    out.push(d);
                    if d == '\\' && chars.peek() == Some(&'"') {
                        out.push('"');
                        chars.next();
                    } else if d == '"' {
                        break;
                    }
                }
            }
            '/' if chars.peek() == Some(&'/') => {
                for d in chars.by_ref() {
                    if d == '\n' {
                        break;
                    }
                }
                pending_space = true;
            }
            c if c.is_whitespace() => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
            }
        }
    }
    out
}

/// Process-wide plan-cache counters, aggregated across every
/// [`PlanCache`] instance (each session's private cache plus the legacy
/// process-wide one) so the global hit rate is observable from outside
/// any one session.
struct PlanCacheMetrics {
    /// `aiql_core_plan_cache_hits_total`.
    hits: aiql_telemetry::Counter,
    /// `aiql_core_plan_cache_misses_total`.
    misses: aiql_telemetry::Counter,
}

fn cache_metrics() -> &'static PlanCacheMetrics {
    static METRICS: std::sync::OnceLock<PlanCacheMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| PlanCacheMetrics {
        hits: aiql_telemetry::global().counter("aiql_core_plan_cache_hits_total"),
        misses: aiql_telemetry::global().counter("aiql_core_plan_cache_misses_total"),
    })
}

/// Cumulative cache counters, as surfaced in `EXPLAIN` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache of compiled statements keyed by normalized source.
///
/// Compile errors are not cached: a failing source recompiles (and
/// recounts as a miss) on every lookup.
#[derive(Debug)]
pub struct PlanCache {
    map: HashMap<String, CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    stmt: Arc<PreparedQuery>,
    last_used: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` compiled statements.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks `source` up by normalized text, compiling and inserting on a
    /// miss (evicting the least-recently-used entry at capacity).
    pub fn get_or_compile(&mut self, source: &str) -> Result<Arc<PreparedQuery>, AiqlError> {
        let key = normalize_source(source);
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            e.last_used = self.tick;
            self.hits += 1;
            cache_metrics().hits.inc();
            return Ok(e.stmt.clone());
        }
        self.misses += 1;
        cache_metrics().misses.inc();
        let stmt = Arc::new(PreparedQuery::compile(source)?);
        if self.map.len() >= self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.map.insert(
            key,
            CacheEntry {
                stmt: stmt.clone(),
                last_used: self.tick,
            },
        );
        Ok(stmt)
    }

    /// Whether `source` is currently cached (no counter movement).
    pub fn contains(&self, source: &str) -> bool {
        self.map.contains_key(&normalize_source(source))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::QueryKind;

    #[test]
    fn zero_param_query_is_analyzed_once() {
        let q = PreparedQuery::compile("proc p read file f return p, f").unwrap();
        assert!(!q.is_parameterized());
        assert!(q.static_ctx().is_some());
        let ctx = q.bind(&ParamValues::new()).unwrap();
        assert_eq!(ctx.kind, QueryKind::Multievent);
    }

    #[test]
    fn params_are_collected_with_kinds() {
        let q = PreparedQuery::compile(
            "(from $t0 to $t1) agentid = $agent \
             proc p[$pname] read file f[name = $fname] return p, f",
        )
        .unwrap();
        let kinds: Vec<(&str, ParamKind)> = q
            .params()
            .iter()
            .map(|p| (p.name.as_str(), p.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("t0", ParamKind::Time),
                ("t1", ParamKind::Time),
                ("agent", ParamKind::Int),
                ("pname", ParamKind::Scalar),
                ("fname", ParamKind::Scalar),
            ]
        );
    }

    #[test]
    fn bind_equals_textual_substitution() {
        let template = "(at $day) agentid = $agent proc p[$pname] read file f return p, f";
        let q = PreparedQuery::compile(template).unwrap();
        let ctx = q
            .bind(
                &ParamValues::new()
                    .set("day", "01/02/2017")
                    .set("agent", 9)
                    .set("pname", "%cmd.exe"),
            )
            .unwrap();
        let oracle = crate::compile(
            r#"(at "01/02/2017") agentid = 9 proc p["%cmd.exe"] read file f return p, f"#,
        )
        .unwrap();
        assert_eq!(ctx.agents, oracle.agents);
        assert_eq!(ctx.window, oracle.window);
        assert_eq!(ctx.patterns[0].subj_cstr, oracle.patterns[0].subj_cstr);
    }

    #[test]
    fn structural_errors_surface_at_compile() {
        // Unknown attribute — caught with probe values, before any bind.
        let e = PreparedQuery::compile("proc p[color = $c] read file f return p").unwrap_err();
        assert!(e.message.contains("unknown attribute"), "{e}");
        // Unknown entity type.
        assert!(PreparedQuery::compile("socket s[$x] read file f return s").is_err());
    }

    #[test]
    fn binding_errors() {
        let q =
            PreparedQuery::compile("(at $day) agentid = $a proc p read file f return p").unwrap();
        // Missing parameter.
        let e = q.bind(&ParamValues::new().set("a", 1)).unwrap_err();
        assert!(e.message.contains("unbound"), "{e}");
        // Undeclared parameter.
        let e = q
            .bind(
                &ParamValues::new()
                    .set("day", "01/01/2017")
                    .set("a", 1)
                    .set("bogus", 3),
            )
            .unwrap_err();
        assert!(e.message.contains("no parameter"), "{e}");
        // Wrong type for a window param.
        let e = q
            .bind(&ParamValues::new().set("day", 5).set("a", 1))
            .unwrap_err();
        assert!(e.message.contains("datetime string"), "{e}");
        // Wrong type for a global agentid.
        let e = q
            .bind(&ParamValues::new().set("day", "01/01/2017").set("a", "x"))
            .unwrap_err();
        assert!(e.message.contains("integer"), "{e}");
        // Invalid datetime: a bind-time error, not a compile-time one.
        let e = q
            .bind(&ParamValues::new().set("day", "not a date").set("a", 1))
            .unwrap_err();
        assert!(e.message.contains("invalid datetime"), "{e}");
    }

    #[test]
    fn percent_binding_selects_like_semantics() {
        let q = PreparedQuery::compile("proc p[$n] read file f return p").unwrap();
        let like = q.bind(&ParamValues::new().set("n", "%cmd%")).unwrap();
        assert!(matches!(
            &like.patterns[0].subj_cstr[0],
            crate::CstrNode::Like { .. }
        ));
        let eq = q.bind(&ParamValues::new().set("n", "cmd.exe")).unwrap();
        assert!(matches!(
            &eq.patterns[0].subj_cstr[0],
            crate::CstrNode::Cmp { .. }
        ));
    }

    #[test]
    fn analyze_rejects_unbound_params() {
        let e = crate::compile("proc p[$n] read file f return p").unwrap_err();
        assert!(e.message.contains("unbound parameter"), "{e}");
        let e = crate::compile("(at $day) proc p read file f return p").unwrap_err();
        assert!(e.message.contains("unbound parameter"), "{e}");
    }

    #[test]
    fn conflicting_time_and_value_use_is_rejected() {
        let e = PreparedQuery::compile("(at $x) proc p[$x] read file f return p").unwrap_err();
        assert!(e.message.contains("both"), "{e}");
    }

    #[test]
    fn dependency_and_anomaly_templates_prepare() {
        let d = PreparedQuery::compile(
            "(at $day) forward: proc p1[$n] ->[write] file f1 <-[read] proc p2 \
             return p1, f1, p2",
        )
        .unwrap();
        assert_eq!(d.params().len(), 2);
        let ctx = d
            .bind(&ParamValues::new().set("day", "01/01/2017").set("n", "%cp%"))
            .unwrap();
        assert_eq!(ctx.kind, QueryKind::Dependency);

        let a = PreparedQuery::compile(
            "(at $day) agentid = $agent window = 1 min step = 10 sec \
             proc p write ip i[dstip = $ip] as evt \
             return p, avg(evt.amount) as amt group by p having amt > $lim",
        );
        // `$lim` sits in having arithmetic — not a literal site, so parsing
        // rejects it: having params are out of scope.
        assert!(a.is_err());
        let a = PreparedQuery::compile(
            "(at $day) agentid = $agent window = 1 min step = 10 sec \
             proc p write ip i[dstip = $ip] as evt \
             return p, avg(evt.amount) as amt group by p \
             having amt > 2 * (amt + amt[1] + amt[2]) / 3",
        )
        .unwrap();
        let ctx = a
            .bind(
                &ParamValues::new()
                    .set("day", "01/02/2017")
                    .set("agent", 9)
                    .set("ip", "10.10.1.129"),
            )
            .unwrap();
        assert_eq!(ctx.kind, QueryKind::Anomaly);
    }

    #[test]
    fn normalization_strips_comments_and_whitespace() {
        let a = normalize_source("proc p  read\n\tfile f // trailing\n return p");
        let b = normalize_source("proc p read file f return p");
        assert_eq!(a, b);
        // String literals keep their exact bytes (including `//` and runs
        // of spaces).
        let c = normalize_source(r#"proc p["a  //b"] read file f return p"#);
        assert!(c.contains("a  //b"));
        // The escape rule matches the lexer exactly: in `\\"` the second
        // backslash escapes the quote and the string continues, so the
        // whitespace inside it is content, not collapsible — two queries
        // whose strings differ only there must get different keys.
        let a = normalize_source(r#"proc p["x\\" a"] read file f return p"#);
        let b = normalize_source(r#"proc p["x\\"  a"] read file f return p"#);
        assert_ne!(a, b, "escaped-quote strings keep exact bytes");
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let mut cache = PlanCache::new(8);
        let src = "proc p read file f return p";
        cache.get_or_compile(src).unwrap();
        cache
            .get_or_compile("proc p  read file f return p // same")
            .unwrap();
        cache.get_or_compile(src).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        // Errors are not cached.
        assert!(cache.get_or_compile("proc p frobnicate").is_err());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        let q1 = "proc a1 read file f return a1";
        let q2 = "proc a2 read file f return a2";
        let q3 = "proc a3 read file f return a3";
        cache.get_or_compile(q1).unwrap();
        cache.get_or_compile(q2).unwrap();
        // Touch q1 so q2 becomes the LRU entry.
        cache.get_or_compile(q1).unwrap();
        cache.get_or_compile(q3).unwrap();
        assert!(cache.contains(q1), "recently used survives");
        assert!(!cache.contains(q2), "LRU evicted");
        assert!(cache.contains(q3));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().capacity, 2);
    }
}
