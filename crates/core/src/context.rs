//! Query contexts: the validated, shortcut-expanded object abstraction that
//! the execution engine consumes (paper Sec. 2, "query context").

use crate::ast::{AggFunc, CmpOp, MaKind, TempKind};
use aiql_model::{EntityKind, OpType, Value};

/// Which part of an event pattern a field reference addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldTarget {
    Subject,
    Object,
    Event,
}

/// A resolved field reference: pattern index, target, attribute name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldRef {
    pub pattern: usize,
    pub target: FieldTarget,
    pub attr: String,
}

/// A normalized attribute constraint (attribute names resolved, shortcuts
/// expanded, `%`-values turned into LIKE patterns).
#[derive(Debug, Clone, PartialEq)]
pub enum CstrNode {
    Cmp {
        attr: String,
        op: CmpOp,
        value: Value,
    },
    Like {
        attr: String,
        pattern: String,
        neg: bool,
    },
    In {
        attr: String,
        neg: bool,
        values: Vec<Value>,
    },
    And(Vec<CstrNode>),
    Or(Vec<CstrNode>),
    Not(Box<CstrNode>),
}

impl CstrNode {
    /// Number of atomic constraints — the basis of the pruning score
    /// (paper Algorithm 1, step 1).
    pub fn atom_count(&self) -> u32 {
        match self {
            CstrNode::Cmp { .. } | CstrNode::Like { .. } | CstrNode::In { .. } => 1,
            CstrNode::And(cs) | CstrNode::Or(cs) => cs.iter().map(CstrNode::atom_count).sum(),
            CstrNode::Not(c) => c.atom_count(),
        }
    }

    /// Evaluates against an attribute lookup function.
    pub fn eval(&self, get: &impl Fn(&str) -> Value) -> bool {
        match self {
            CstrNode::Cmp { attr, op, value } => {
                let v = get(attr);
                if v.is_null() {
                    return false;
                }
                let ord = v.loose_cmp(value);
                match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                }
            }
            CstrNode::Like { attr, pattern, neg } => {
                let v = get(attr);
                if v.is_null() {
                    return false;
                }
                v.like(pattern) != *neg
            }
            CstrNode::In { attr, neg, values } => {
                let v = get(attr);
                if v.is_null() {
                    return false;
                }
                values.iter().any(|x| x.loose_eq(&v)) != *neg
            }
            CstrNode::And(cs) => cs.iter().all(|c| c.eval(get)),
            CstrNode::Or(cs) => cs.iter().any(|c| c.eval(get)),
            CstrNode::Not(c) => !c.eval(get),
        }
    }
}

/// One analyzed event pattern.
#[derive(Debug, Clone)]
pub struct PatternCtx {
    /// Position in the query (0-based).
    pub idx: usize,
    /// Event variable (`as evt1`), if named.
    pub evt_var: Option<String>,
    /// Subject entity variable, if named.
    pub subj_var: Option<String>,
    /// Object entity variable, if named.
    pub obj_var: Option<String>,
    /// Kind of the object entity (subjects are always processes).
    pub object_kind: EntityKind,
    /// The set of operation types this pattern admits.
    pub ops: Vec<OpType>,
    /// Normalized subject constraints.
    pub subj_cstr: Vec<CstrNode>,
    /// Normalized object constraints.
    pub obj_cstr: Vec<CstrNode>,
    /// Normalized event constraints (`as evt[...]`).
    pub evt_cstr: Vec<CstrNode>,
    /// Effective time window [lo, hi) in nanoseconds (global ∩ pattern).
    pub window: Option<(i64, i64)>,
    /// Effective agent filter (global ∩ pattern-level `agentid` constraints).
    pub agents: Option<Vec<i64>>,
    /// Pruning score: the number of constraints specified (Algorithm 1).
    pub score: u32,
}

/// An analyzed relationship between two event patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum RelationCtx {
    /// Attribute relationship `left op right`.
    Attr {
        left: FieldRef,
        op: CmpOp,
        right: FieldRef,
    },
    /// Temporal relationship between patterns `left` and `right` with an
    /// optional gap range in nanoseconds.
    Temporal {
        left: usize,
        kind: TempKind,
        range_ns: Option<(i64, i64)>,
        right: usize,
    },
}

impl RelationCtx {
    /// The two pattern indexes a relationship connects.
    pub fn endpoints(&self) -> (usize, usize) {
        match self {
            RelationCtx::Attr { left, right, .. } => (left.pattern, right.pattern),
            RelationCtx::Temporal { left, right, .. } => (*left, *right),
        }
    }
}

/// A return-clause item after resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct RetItemCtx {
    /// Output column name (rename, or derived from the reference).
    pub name: String,
    pub expr: RetExprCtx,
}

/// Resolved return expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum RetExprCtx {
    Field(FieldRef),
    Agg {
        func: AggFunc,
        distinct: bool,
        arg: FieldRef,
    },
}

/// The resolved return clause.
#[derive(Debug, Clone, Default)]
pub struct ReturnCtx {
    pub count: bool,
    pub distinct: bool,
    pub items: Vec<RetItemCtx>,
}

/// Sliding-window specification for anomaly queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlideSpec {
    pub window_ns: i64,
    pub step_ns: i64,
}

/// Resolved `having` expressions (references point at return items).
#[derive(Debug, Clone, PartialEq)]
pub enum HavingCtx {
    Cmp {
        op: CmpOp,
        left: ArithCtx,
        right: ArithCtx,
    },
    And(Box<HavingCtx>, Box<HavingCtx>),
    Or(Box<HavingCtx>, Box<HavingCtx>),
    Not(Box<HavingCtx>),
}

/// Resolved arithmetic over return items, history states, moving averages.
#[derive(Debug, Clone, PartialEq)]
pub enum ArithCtx {
    Num(f64),
    /// Current value of return item `i`.
    Item(usize),
    /// Value of return item `i`, `back` windows ago.
    Hist {
        item: usize,
        back: usize,
    },
    /// Moving average of return item `i` over the window history.
    MovAvg {
        kind: MaKind,
        item: usize,
        param: f64,
    },
    Add(Box<ArithCtx>, Box<ArithCtx>),
    Sub(Box<ArithCtx>, Box<ArithCtx>),
    Mul(Box<ArithCtx>, Box<ArithCtx>),
    Div(Box<ArithCtx>, Box<ArithCtx>),
    Neg(Box<ArithCtx>),
}

impl HavingCtx {
    /// Whether the expression uses history states or moving averages.
    pub fn uses_history(&self) -> bool {
        match self {
            HavingCtx::Cmp { left, right, .. } => left.uses_history() || right.uses_history(),
            HavingCtx::And(a, b) | HavingCtx::Or(a, b) => a.uses_history() || b.uses_history(),
            HavingCtx::Not(e) => e.uses_history(),
        }
    }
}

impl ArithCtx {
    fn uses_history(&self) -> bool {
        match self {
            ArithCtx::Hist { .. } | ArithCtx::MovAvg { .. } => true,
            ArithCtx::Add(a, b)
            | ArithCtx::Sub(a, b)
            | ArithCtx::Mul(a, b)
            | ArithCtx::Div(a, b) => a.uses_history() || b.uses_history(),
            ArithCtx::Neg(e) => e.uses_history(),
            ArithCtx::Num(_) | ArithCtx::Item(_) => false,
        }
    }
}

/// The kind of analyzed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Plain multievent query (paper Sec. 4.1).
    Multievent,
    /// Anomaly query: multievent + sliding window (paper Sec. 4.3).
    Anomaly,
    /// Dependency query, compiled to multievent form (paper Sec. 4.2).
    Dependency,
}

/// The complete, validated query context handed to the execution engine.
#[derive(Debug, Clone)]
pub struct QueryContext {
    pub kind: QueryKind,
    pub patterns: Vec<PatternCtx>,
    pub relations: Vec<RelationCtx>,
    pub ret: ReturnCtx,
    /// Group-by return item indexes.
    pub group_by: Vec<usize>,
    pub having: Option<HavingCtx>,
    /// Sort keys: (return item index, ascending).
    pub sort_by: Vec<(usize, bool)>,
    pub top: Option<usize>,
    /// Sliding window (anomaly queries only).
    pub slide: Option<SlideSpec>,
    /// Global time window [lo, hi) in nanoseconds.
    pub window: Option<(i64, i64)>,
    /// Global agent filter.
    pub agents: Option<Vec<i64>>,
}

impl QueryContext {
    /// Total constraint count across all patterns (the conciseness metric's
    /// numerator and a sanity check for tests).
    pub fn total_constraints(&self) -> u32 {
        self.patterns.iter().map(|p| p.score).sum::<u32>() + self.relations.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_count_nested() {
        let c = CstrNode::And(vec![
            CstrNode::Like {
                attr: "a".into(),
                pattern: "%x".into(),
                neg: false,
            },
            CstrNode::Or(vec![
                CstrNode::Cmp {
                    attr: "b".into(),
                    op: CmpOp::Eq,
                    value: Value::Int(1),
                },
                CstrNode::Cmp {
                    attr: "b".into(),
                    op: CmpOp::Eq,
                    value: Value::Int(2),
                },
            ]),
        ]);
        assert_eq!(c.atom_count(), 3);
    }

    #[test]
    fn cstr_eval() {
        let get = |attr: &str| match attr {
            "exe_name" => Value::str("cmd.exe"),
            "pid" => Value::Int(42),
            _ => Value::Null,
        };
        assert!(CstrNode::Like {
            attr: "exe_name".into(),
            pattern: "%cmd%".into(),
            neg: false
        }
        .eval(&get));
        assert!(CstrNode::Cmp {
            attr: "pid".into(),
            op: CmpOp::Gt,
            value: Value::Int(10)
        }
        .eval(&get));
        assert!(!CstrNode::Cmp {
            attr: "missing".into(),
            op: CmpOp::Eq,
            value: Value::Int(1)
        }
        .eval(&get));
        assert!(CstrNode::In {
            attr: "pid".into(),
            neg: false,
            values: vec![Value::Int(41), Value::Int(42)]
        }
        .eval(&get));
        assert!(CstrNode::Not(Box::new(CstrNode::Cmp {
            attr: "pid".into(),
            op: CmpOp::Eq,
            value: Value::Int(0)
        }))
        .eval(&get));
    }

    #[test]
    fn history_detection() {
        let h = HavingCtx::Cmp {
            op: CmpOp::Gt,
            left: ArithCtx::Item(0),
            right: ArithCtx::Num(5.0),
        };
        assert!(!h.uses_history());
        let h = HavingCtx::Cmp {
            op: CmpOp::Gt,
            left: ArithCtx::Item(0),
            right: ArithCtx::Hist { item: 0, back: 1 },
        };
        assert!(h.uses_history());
    }
}
