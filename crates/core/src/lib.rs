//! The AIQL language: lexer, parser, and semantic analysis (paper Sec. 4).
//!
//! AIQL (Attack Investigation Query Language) expresses the three major
//! types of attack behaviours over system monitoring data:
//!
//! - **Multievent queries** (Sec. 4.1) — `{subject-operation-object}` event
//!   patterns plus attribute/temporal relationships:
//!
//!   ```text
//!   agentid = 1
//!   (at "01/01/2017")
//!   proc p1 start proc p2["%telnet%"] as evt1
//!   proc p3 start ip ipp[dstport = 4444] as evt2
//!   with p2 = p3, evt1 before evt2
//!   return p1, p2
//!   ```
//!
//! - **Dependency queries** (Sec. 4.2) — entity chains for provenance
//!   tracking: `forward: proc p1 ->[write] file f1 <-[read] proc p2 ...`
//!
//! - **Anomaly queries** (Sec. 4.3) — sliding windows, aggregates, history
//!   states (`freq[1]`), and moving averages (`SMA`/`CMA`/`WMA`/`EWMA`).
//!
//! The entry points are [`parse_query`] (source → AST) and [`compile`]
//! (source → validated [`QueryContext`] for the execution engine), with all
//! of the paper's context-aware syntax shortcuts applied during analysis.
//!
//! # Examples
//!
//! ```
//! let ctx = aiql_core::compile(r#"
//!     proc p1 read file f1[".bash_history"] as evt1
//!     return p1, f1
//! "#).unwrap();
//! assert_eq!(ctx.patterns.len(), 1);
//! ```

pub mod analyze;
pub mod ast;
pub mod context;
pub mod err;
pub mod lex;
pub mod parse;
pub mod prepare;
pub mod print;

pub use analyze::{analyze, rewrite_dependency};
pub use ast::Query;
pub use ast::TempKind;
pub use context::{
    ArithCtx, CstrNode, FieldRef, FieldTarget, HavingCtx, PatternCtx, QueryContext, QueryKind,
    RelationCtx, RetExprCtx, RetItemCtx, ReturnCtx, SlideSpec,
};
pub use err::{AiqlError, Span};
pub use prepare::{
    normalize_source, CacheStats, ParamKind, ParamSpec, ParamValues, PlanCache, PreparedQuery,
};

/// Parses AIQL source into an AST.
pub fn parse_query(src: &str) -> Result<Query, AiqlError> {
    parse::parse(src)
}

/// Parses and analyzes AIQL source into an executable query context.
pub fn compile(src: &str) -> Result<QueryContext, AiqlError> {
    analyze(&parse_query(src)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn compile_end_to_end() {
        let ctx = super::compile(
            "proc p1 start proc p2 as e1 proc p2 read file f as e2 \
             with e1 before e2 return p1, p2, f",
        )
        .unwrap();
        assert_eq!(ctx.patterns.len(), 2);
        // Explicit temporal + implicit p2 reuse.
        assert_eq!(ctx.relations.len(), 2);
    }

    #[test]
    fn compile_propagates_both_error_kinds() {
        assert!(super::compile("proc p1 read").is_err()); // Parse error.
        assert!(super::compile("proc p1 frobnicate file f return p1").is_err());
        // Semantic.
    }
}
