//! Semantic analysis: AST → [`QueryContext`], implementing AIQL's
//! context-aware syntax shortcuts (paper Sec. 4.1):
//!
//! - **Attribute inference** — a bare value in an entity pattern constrains
//!   the kind's default attribute (`name` / `exe_name` / `dst_ip`); a bare
//!   entity ID in `return` projects the default attribute; a bare ID in an
//!   attribute relationship compares `id`.
//! - **Optional ID** — entity/event variables may be omitted when never
//!   referenced.
//! - **Entity ID reuse** — the same entity variable in several patterns adds
//!   implicit `id = id` attribute relationships between those patterns.
//!
//! Dependency queries are rewritten into multievent form here
//! ([`rewrite_dependency`]), as the engine's "dependency query rewriting"
//! component (paper Fig. 2) prescribes.

use crate::ast::*;
use crate::context::*;
use crate::err::{AiqlError, Span};
use aiql_model::{schema, Duration, EntityKind, OpType, Timestamp, Value};
use std::collections::HashMap;

/// Analyzes a parsed query into an executable context.
///
/// Queries carrying `$name` placeholders must be bound through
/// [`crate::prepare::PreparedQuery`] first; an unbound placeholder is a
/// semantic error here.
pub fn analyze(q: &Query) -> Result<QueryContext, AiqlError> {
    if let Some((name, span)) = crate::prepare::first_param(q) {
        return Err(
            AiqlError::at(span, format!("unbound parameter `${name}`")).with_help(
                "prepare the query and bind its parameters \
                 (aiql_core::PreparedQuery or a session prepare)",
            ),
        );
    }
    match q {
        Query::Multievent(m) => analyze_multievent(m),
        Query::Dependency(d) => {
            let m = rewrite_dependency(d)?;
            let mut ctx = analyze_multievent(&m)?;
            ctx.kind = QueryKind::Dependency;
            Ok(ctx)
        }
    }
}

/// Canonicalizes attribute spellings (the paper's queries write `dstip`,
/// `dstport`, etc.).
fn canon_attr(name: &str) -> String {
    match name.to_ascii_lowercase().as_str() {
        "dstip" => "dst_ip".into(),
        "srcip" => "src_ip".into(),
        "dstport" => "dst_port".into(),
        "srcport" => "src_port".into(),
        "starttime" => "start_time".into(),
        "endtime" => "end_time".into(),
        "failure_code" => "failure".into(),
        other => other.into(),
    }
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Str(s) => Value::Str(s.clone()),
        Lit::Int(i) => Value::Int(*i),
        Lit::Float(f) => Value::Float(*f),
        // Unreachable in practice: `analyze` rejects queries with unbound
        // placeholders up front. Null keeps the conversion total.
        Lit::Param(_) => Value::Null,
    }
}

fn cmp_of(op: CmpOp) -> CmpOp {
    op
}

/// What a constraint set applies to, for attribute validation and defaults.
#[derive(Clone, Copy)]
enum CstrTarget {
    Entity(EntityKind),
    Event,
}

fn validate_attr(target: CstrTarget, attr: &str, span: Span) -> Result<(), AiqlError> {
    let ok = match target {
        CstrTarget::Entity(kind) => schema::is_entity_attr(kind, attr),
        CstrTarget::Event => schema::is_event_attr(attr),
    };
    if ok {
        Ok(())
    } else {
        let what = match target {
            CstrTarget::Entity(kind) => format!("{kind} entities"),
            CstrTarget::Event => "events".to_string(),
        };
        Err(
            AiqlError::at(span, format!("unknown attribute `{attr}` for {what}")).with_help(
                match target {
                    CstrTarget::Entity(kind) => format!(
                        "valid attributes: id, agentid, {}",
                        schema::entity_attrs(kind).join(", ")
                    ),
                    CstrTarget::Event => {
                        format!("valid attributes: {}", schema::EVENT_ATTRS.join(", "))
                    }
                },
            ),
        )
    }
}

fn convert_cstr(c: &AttrCstr, target: CstrTarget) -> Result<CstrNode, AiqlError> {
    Ok(match c {
        AttrCstr::Cmp {
            attr,
            op,
            value,
            span,
        } => {
            let attr = canon_attr(attr);
            validate_attr(target, &attr, *span)?;
            let v = lit_value(value);
            // `attr = "%pat%"` means LIKE; `attr != "%pat%"` means NOT LIKE.
            if let Value::Str(s) = &v {
                if s.contains('%') && matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Ok(CstrNode::Like {
                        attr,
                        pattern: s.clone(),
                        neg: *op == CmpOp::Ne,
                    });
                }
            }
            CstrNode::Cmp {
                attr,
                op: cmp_of(*op),
                value: v,
            }
        }
        AttrCstr::Bare { neg, value, span } => {
            let attr = match target {
                CstrTarget::Entity(kind) => schema::default_attr(kind).to_string(),
                CstrTarget::Event => {
                    return Err(AiqlError::at(
                        *span,
                        "bare values are not allowed in event constraints",
                    )
                    .with_help("write an explicit attribute, e.g. `amount > 1000`"))
                }
            };
            let v = lit_value(value);
            if let Value::Str(s) = &v {
                if s.contains('%') {
                    return Ok(CstrNode::Like {
                        attr,
                        pattern: s.clone(),
                        neg: *neg,
                    });
                }
            }
            CstrNode::Cmp {
                attr,
                op: if *neg { CmpOp::Ne } else { CmpOp::Eq },
                value: v,
            }
        }
        AttrCstr::In {
            attr,
            neg,
            values,
            span,
        } => {
            let attr = canon_attr(attr);
            validate_attr(target, &attr, *span)?;
            CstrNode::In {
                attr,
                neg: *neg,
                values: values.iter().map(lit_value).collect(),
            }
        }
        AttrCstr::Not(inner) => CstrNode::Not(Box::new(convert_cstr(inner, target)?)),
        AttrCstr::And(a, b) => {
            CstrNode::And(vec![convert_cstr(a, target)?, convert_cstr(b, target)?])
        }
        AttrCstr::Or(a, b) => {
            CstrNode::Or(vec![convert_cstr(a, target)?, convert_cstr(b, target)?])
        }
    })
}

/// Flattens top-level conjunctions into a conjunct list.
fn conjuncts_of(node: CstrNode) -> Vec<CstrNode> {
    match node {
        CstrNode::And(cs) => cs.into_iter().flat_map(conjuncts_of).collect(),
        other => vec![other],
    }
}

/// Parses a time-window AST node into a `[lo, hi)` nanosecond range. A date
/// without a time-of-day denotes the whole day; a datetime with a time
/// denotes that exact second.
fn window_range(w: &TimeWindow) -> Result<(i64, i64), AiqlError> {
    match w {
        TimeWindow::At { datetime, span } => {
            let t = Timestamp::parse(datetime).ok_or_else(|| {
                AiqlError::at(*span, format!("invalid datetime `{datetime}`"))
                    .with_help("use MM/DD/YYYY or YYYY-MM-DD, optionally with HH:MM:SS")
            })?;
            if datetime.contains(':') {
                Ok((t.0, t.0 + aiql_model::time::NANOS_PER_SEC))
            } else {
                let day = t.day_start();
                Ok((
                    day.0,
                    day.saturating_add(Duration::of(1, aiql_model::TimeUnit::Day))
                        .0,
                ))
            }
        }
        TimeWindow::FromTo { from, to, span } => {
            let lo = Timestamp::parse(from)
                .ok_or_else(|| AiqlError::at(*span, format!("invalid datetime `{from}`")))?;
            let hi = Timestamp::parse(to)
                .ok_or_else(|| AiqlError::at(*span, format!("invalid datetime `{to}`")))?;
            if hi.0 <= lo.0 {
                return Err(AiqlError::at(
                    *span,
                    "empty time window: `to` is not after `from`",
                ));
            }
            Ok((lo.0, hi.0))
        }
    }
}

fn intersect(a: Option<(i64, i64)>, b: Option<(i64, i64)>) -> Option<(i64, i64)> {
    match (a, b) {
        (Some((al, ah)), Some((bl, bh))) => Some((al.max(bl), ah.min(bh))),
        (x, y) => x.or(y),
    }
}

/// Resolution tables for variables.
struct Vars {
    /// Entity var → occurrences (pattern, target, kind), in pattern order.
    entities: HashMap<String, Vec<(usize, FieldTarget, EntityKind)>>,
    /// Event var → pattern index.
    events: HashMap<String, usize>,
}

impl Vars {
    /// Resolves `id[.attr]` to a field reference, applying attribute
    /// inference: bare entity IDs project/compare the kind's default
    /// attribute in `return` position and `id` in relationship position.
    fn resolve(
        &self,
        r: &AttrRef,
        default_entity_attr: bool,
    ) -> Result<(FieldRef, EntityKind), AiqlError> {
        if let Some(&pattern) = self.events.get(&r.id) {
            let attr = match &r.attr {
                Some(a) => {
                    let a = canon_attr(a);
                    validate_attr(CstrTarget::Event, &a, r.span)?;
                    a
                }
                None => "id".to_string(),
            };
            // Event refs have no entity kind; report Process as a dummy.
            return Ok((
                FieldRef {
                    pattern,
                    target: FieldTarget::Event,
                    attr,
                },
                EntityKind::Process,
            ));
        }
        if let Some(occ) = self.entities.get(&r.id) {
            let (pattern, target, kind) = occ[0];
            let attr = match &r.attr {
                Some(a) => {
                    let a = canon_attr(a);
                    validate_attr(CstrTarget::Entity(kind), &a, r.span)?;
                    a
                }
                None if default_entity_attr => schema::default_attr(kind).to_string(),
                None => "id".to_string(),
            };
            return Ok((
                FieldRef {
                    pattern,
                    target,
                    attr,
                },
                kind,
            ));
        }
        Err(
            AiqlError::at(r.span, format!("unknown identifier `{}`", r.id))
                .with_help("identifiers must be declared in an event pattern before use"),
        )
    }
}

/// Analyzes a multievent (or anomaly) query.
pub fn analyze_multievent(q: &MultieventQuery) -> Result<QueryContext, AiqlError> {
    // --- Global constraints -------------------------------------------------
    let mut agents: Option<Vec<i64>> = None;
    let mut window: Option<(i64, i64)> = None;
    let mut slide_window: Option<i64> = None;
    let mut slide_step: Option<i64> = None;
    for g in &q.global {
        match g {
            GlobalCstr::Attr {
                attr,
                op,
                value,
                span,
            } => {
                if !canon_attr(attr).eq("agentid") {
                    return Err(AiqlError::at(
                        *span,
                        format!("unsupported global constraint `{attr}`"),
                    )
                    .with_help("global constraints support `agentid` and time windows"));
                }
                if *op != CmpOp::Eq {
                    return Err(AiqlError::at(*span, "global agentid supports `=` and `in`"));
                }
                match lit_value(value) {
                    Value::Int(i) => agents = Some(vec![i]),
                    _ => return Err(AiqlError::at(*span, "agentid must be an integer")),
                }
            }
            GlobalCstr::AttrIn { attr, values, span } => {
                if !canon_attr(attr).eq("agentid") {
                    return Err(AiqlError::at(
                        *span,
                        format!("unsupported global constraint `{attr}`"),
                    ));
                }
                let mut ids = Vec::new();
                for v in values {
                    match lit_value(v) {
                        Value::Int(i) => ids.push(i),
                        _ => return Err(AiqlError::at(*span, "agentid list must be integers")),
                    }
                }
                agents = Some(ids);
            }
            GlobalCstr::Window(w) => {
                window = intersect(window, Some(window_range(w)?));
            }
            GlobalCstr::SlideWindow { length, .. } => {
                slide_window = Some(Duration::of(length.count, length.unit).as_nanos());
            }
            GlobalCstr::SlideStep { length, .. } => {
                slide_step = Some(Duration::of(length.count, length.unit).as_nanos());
            }
        }
    }
    let slide = match (slide_window, slide_step) {
        (Some(w), Some(s)) => {
            if w <= 0 || s <= 0 {
                return Err(AiqlError::new("window and step must be positive"));
            }
            Some(SlideSpec {
                window_ns: w,
                step_ns: s,
            })
        }
        (Some(_), None) => {
            return Err(AiqlError::new(
                "sliding window needs a `step = ...` constraint",
            ))
        }
        (None, Some(_)) => {
            return Err(AiqlError::new(
                "sliding step needs a `window = ...` constraint",
            ))
        }
        (None, None) => None,
    };

    // --- Variable tables ----------------------------------------------------
    let mut vars = Vars {
        entities: HashMap::new(),
        events: HashMap::new(),
    };
    for (idx, p) in q.patterns.iter().enumerate() {
        if p.subject.kind != EntityKind::Process {
            return Err(
                AiqlError::at(p.subject.span, "event subjects must be processes")
                    .with_help("events are {subject-operation-object} with a process subject"),
            );
        }
        for (pat, target) in [
            (&p.subject, FieldTarget::Subject),
            (&p.object, FieldTarget::Object),
        ] {
            if let Some(v) = &pat.var {
                let occ = vars.entities.entry(v.clone()).or_default();
                if let Some(&(_, _, kind)) = occ.first() {
                    if kind != pat.kind {
                        return Err(AiqlError::at(
                            pat.span,
                            format!(
                                "entity `{v}` was declared as {kind} but used as {}",
                                pat.kind
                            ),
                        ));
                    }
                }
                occ.push((idx, target, pat.kind));
            }
        }
        if let Some(ev) = &p.evt_var {
            if vars.events.insert(ev.clone(), idx).is_some() {
                return Err(AiqlError::at(
                    p.span,
                    format!("duplicate event identifier `{ev}`"),
                ));
            }
            if vars.entities.contains_key(ev) {
                return Err(AiqlError::at(
                    p.span,
                    format!("identifier `{ev}` is used for both an entity and an event"),
                ));
            }
        }
    }

    // --- Patterns -----------------------------------------------------------
    let mut patterns = Vec::new();
    for (idx, p) in q.patterns.iter().enumerate() {
        // Operation set.
        let mut names = Vec::new();
        p.op.op_names(&mut names);
        for (name, span) in &names {
            if OpType::parse_keyword(name).is_none() {
                return Err(
                    AiqlError::at(*span, format!("unknown operation `{name}`")).with_help(format!(
                        "valid operations: {}",
                        aiql_model::event::ALL_OPS
                            .iter()
                            .map(|o| o.keyword())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                );
            }
        }
        let ops: Vec<OpType> = aiql_model::event::ALL_OPS
            .into_iter()
            .filter(|op| p.op.admits(op.keyword()))
            .collect();
        if ops.is_empty() {
            return Err(AiqlError::at(
                p.span,
                "operation expression matches no operation",
            ));
        }

        let subj_cstr = match &p.subject.cstr {
            Some(c) => conjuncts_of(convert_cstr(c, CstrTarget::Entity(EntityKind::Process))?),
            None => Vec::new(),
        };
        let obj_cstr = match &p.object.cstr {
            Some(c) => conjuncts_of(convert_cstr(c, CstrTarget::Entity(p.object.kind))?),
            None => Vec::new(),
        };
        let evt_cstr = match &p.evt_cstr {
            Some(c) => conjuncts_of(convert_cstr(c, CstrTarget::Event)?),
            None => Vec::new(),
        };

        // Pattern-level window intersected with the global one.
        let pwindow = match &p.window {
            Some(w) => intersect(window, Some(window_range(w)?)),
            None => window,
        };

        // Agent hoisting: `agentid = N` atoms on the subject or event narrow
        // the pattern's agent set (events are observed on the subject's
        // host). Object-side agent constraints stay entity attributes only:
        // cross-host connects target entities on *other* hosts.
        let mut pagents = agents.clone();
        for c in subj_cstr.iter().chain(&evt_cstr) {
            if let CstrNode::Cmp {
                attr,
                op: CmpOp::Eq,
                value: Value::Int(i),
            } = c
            {
                if attr == "agentid" {
                    pagents = match pagents {
                        None => Some(vec![*i]),
                        Some(prev) if prev.contains(i) => Some(vec![*i]),
                        Some(_) => Some(vec![]), // Contradiction: empty set.
                    };
                }
            }
        }

        let score = subj_cstr.iter().map(CstrNode::atom_count).sum::<u32>()
            + obj_cstr.iter().map(CstrNode::atom_count).sum::<u32>()
            + evt_cstr.iter().map(CstrNode::atom_count).sum::<u32>()
            + u32::from(p.window.is_some())
            + u32::from(pagents.is_some());

        patterns.push(PatternCtx {
            idx,
            evt_var: p.evt_var.clone(),
            subj_var: p.subject.var.clone(),
            obj_var: p.object.var.clone(),
            object_kind: p.object.kind,
            ops,
            subj_cstr,
            obj_cstr,
            evt_cstr,
            window: pwindow,
            agents: pagents,
            score,
        });
    }

    // --- Relationships -------------------------------------------------------
    let mut relations = Vec::new();
    for r in &q.relations {
        match r {
            Relation::Attr { left, op, right } => {
                let (lref, _) = vars.resolve(left, false)?;
                let (rref, _) = vars.resolve(right, false)?;
                if lref.pattern == rref.pattern && lref.target == rref.target {
                    return Err(AiqlError::at(
                        left.span.merge(right.span),
                        "attribute relationship relates a pattern to itself",
                    ));
                }
                relations.push(RelationCtx::Attr {
                    left: lref,
                    op: *op,
                    right: rref,
                });
            }
            Relation::Temporal {
                left,
                kind,
                range,
                right,
                span,
            } => {
                let lp = *vars.events.get(left).ok_or_else(|| {
                    AiqlError::at(*span, format!("unknown event identifier `{left}`"))
                })?;
                let rp = *vars.events.get(right).ok_or_else(|| {
                    AiqlError::at(*span, format!("unknown event identifier `{right}`"))
                })?;
                if lp == rp {
                    return Err(AiqlError::at(
                        *span,
                        "temporal relationship relates an event to itself",
                    ));
                }
                let range_ns = range.map(|(lo, hi, unit)| {
                    (
                        Duration::of(lo, unit).as_nanos(),
                        Duration::of(hi, unit).as_nanos(),
                    )
                });
                if let Some((lo, hi)) = range_ns {
                    if lo > hi || lo < 0 {
                        return Err(AiqlError::at(
                            *span,
                            "invalid time range: need 0 <= lo <= hi",
                        ));
                    }
                }
                relations.push(RelationCtx::Temporal {
                    left: lp,
                    kind: *kind,
                    range_ns,
                    right: rp,
                });
            }
        }
    }

    // Implicit relationships from entity ID reuse.
    for occ in vars.entities.values() {
        for w in occ.windows(2) {
            let (p1, t1, _) = w[0];
            let (p2, t2, _) = w[1];
            if p1 == p2 {
                continue; // Same pattern (e.g. self-loop) needs no join.
            }
            relations.push(RelationCtx::Attr {
                left: FieldRef {
                    pattern: p1,
                    target: t1,
                    attr: "id".into(),
                },
                op: CmpOp::Eq,
                right: FieldRef {
                    pattern: p2,
                    target: t2,
                    attr: "id".into(),
                },
            });
        }
    }

    // --- Return clause --------------------------------------------------------
    let mut ret = ReturnCtx {
        count: q.ret.count,
        distinct: q.ret.distinct,
        items: Vec::new(),
    };
    for item in &q.ret.items {
        let (name, expr) = resolve_ret_expr(&vars, &item.expr)?;
        let name = item.rename.clone().unwrap_or(name);
        ret.items.push(RetItemCtx { name, expr });
    }
    if ret.items.is_empty() {
        return Err(AiqlError::new(
            "return clause must name at least one result",
        ));
    }

    // --- group by / sort / having ----------------------------------------------
    let mut group_by = Vec::new();
    for g in &q.group_by {
        group_by.push(find_item(&vars, &ret, g)?);
    }
    let mut sort_by = Vec::new();
    for (s, asc) in &q.sort_by {
        sort_by.push((find_item(&vars, &ret, s)?, *asc));
    }
    let having = match &q.having {
        Some(h) => Some(resolve_having(&vars, &ret, h)?),
        None => None,
    };

    // Anomaly-specific validation.
    let uses_history = having.as_ref().is_some_and(HavingCtx::uses_history);
    if uses_history && slide.is_none() {
        return Err(AiqlError::new(
            "history states and moving averages require `window = ...` and `step = ...`",
        ));
    }
    let has_agg = ret
        .items
        .iter()
        .any(|i| matches!(i.expr, RetExprCtx::Agg { .. }));
    if slide.is_some() && !has_agg {
        return Err(AiqlError::new(
            "anomaly queries must aggregate (e.g. `count(...)`) in the return clause",
        ));
    }

    let kind = if slide.is_some() {
        QueryKind::Anomaly
    } else {
        QueryKind::Multievent
    };
    Ok(QueryContext {
        kind,
        patterns,
        relations,
        ret,
        group_by,
        having,
        sort_by,
        top: q.top,
        slide,
        window,
        agents,
    })
}

fn resolve_ret_expr(vars: &Vars, e: &RetExpr) -> Result<(String, RetExprCtx), AiqlError> {
    match e {
        RetExpr::Ref(r) => {
            let (fref, _) = vars.resolve(r, true)?;
            let name = match &r.attr {
                Some(a) => format!("{}.{a}", r.id),
                None => r.id.clone(),
            };
            Ok((name, RetExprCtx::Field(fref)))
        }
        RetExpr::Agg {
            func,
            distinct,
            arg,
            ..
        } => {
            let (fref, _) = vars.resolve(arg, true)?;
            let name = format!("{func:?}").to_lowercase();
            Ok((
                name,
                RetExprCtx::Agg {
                    func: *func,
                    distinct: *distinct,
                    arg: fref,
                },
            ))
        }
    }
}

/// Finds the return item an expression refers to (by rename or structure).
fn find_item(vars: &Vars, ret: &ReturnCtx, e: &RetExpr) -> Result<usize, AiqlError> {
    // By name first: `group by p` where `p` (or a rename) labels an item.
    if let RetExpr::Ref(r) = e {
        if r.attr.is_none() {
            if let Some(i) = ret.items.iter().position(|it| it.name == r.id) {
                return Ok(i);
            }
        }
    }
    let (_, expr) = resolve_ret_expr(vars, e)?;
    ret.items
        .iter()
        .position(|it| it.expr == expr)
        .ok_or_else(|| {
            let span = match e {
                RetExpr::Ref(r) => r.span,
                RetExpr::Agg { span, .. } => *span,
            };
            AiqlError::at(
                span,
                "group/sort expression must appear in the return clause",
            )
        })
}

fn item_by_name(ret: &ReturnCtx, name: &str, span: Span) -> Result<usize, AiqlError> {
    ret.items
        .iter()
        .position(|it| it.name == name)
        .ok_or_else(|| {
            AiqlError::at(span, format!("`{name}` does not name a returned value"))
                .with_help("history states and moving averages refer to renamed return items")
        })
}

fn resolve_having(vars: &Vars, ret: &ReturnCtx, h: &HavingExpr) -> Result<HavingCtx, AiqlError> {
    Ok(match h {
        HavingExpr::Cmp { op, left, right } => HavingCtx::Cmp {
            op: *op,
            left: resolve_arith(vars, ret, left)?,
            right: resolve_arith(vars, ret, right)?,
        },
        HavingExpr::And(a, b) => HavingCtx::And(
            Box::new(resolve_having(vars, ret, a)?),
            Box::new(resolve_having(vars, ret, b)?),
        ),
        HavingExpr::Or(a, b) => HavingCtx::Or(
            Box::new(resolve_having(vars, ret, a)?),
            Box::new(resolve_having(vars, ret, b)?),
        ),
        HavingExpr::Not(e) => HavingCtx::Not(Box::new(resolve_having(vars, ret, e)?)),
    })
}

fn resolve_arith(vars: &Vars, ret: &ReturnCtx, a: &ArithExpr) -> Result<ArithCtx, AiqlError> {
    Ok(match a {
        ArithExpr::Num(n) => ArithCtx::Num(*n),
        ArithExpr::Ref(r) => {
            if r.attr.is_none() {
                if let Some(i) = ret.items.iter().position(|it| it.name == r.id) {
                    return Ok(ArithCtx::Item(i));
                }
            }
            // Fall back to structural match against returned fields.
            let (fref, _) = vars.resolve(r, true)?;
            let pos = ret
                .items
                .iter()
                .position(|it| it.expr == RetExprCtx::Field(fref.clone()))
                .ok_or_else(|| {
                    AiqlError::at(r.span, format!("`{}` does not name a returned value", r.id))
                })?;
            ArithCtx::Item(pos)
        }
        ArithExpr::Hist { name, back, span } => ArithCtx::Hist {
            item: item_by_name(ret, name, *span)?,
            back: *back,
        },
        ArithExpr::MovAvg {
            kind,
            name,
            param,
            span,
        } => {
            if matches!(kind, MaKind::Sma | MaKind::Wma) && *param < 1.0 {
                return Err(AiqlError::at(*span, "SMA/WMA window must be at least 1"));
            }
            if matches!(kind, MaKind::Ewma) && !(0.0 < *param && *param < 1.0) {
                return Err(AiqlError::at(*span, "EWMA smoothing must be in (0, 1)"));
            }
            ArithCtx::MovAvg {
                kind: *kind,
                item: item_by_name(ret, name, *span)?,
                param: *param,
            }
        }
        ArithExpr::Add(x, y) => ArithCtx::Add(
            Box::new(resolve_arith(vars, ret, x)?),
            Box::new(resolve_arith(vars, ret, y)?),
        ),
        ArithExpr::Sub(x, y) => ArithCtx::Sub(
            Box::new(resolve_arith(vars, ret, x)?),
            Box::new(resolve_arith(vars, ret, y)?),
        ),
        ArithExpr::Mul(x, y) => ArithCtx::Mul(
            Box::new(resolve_arith(vars, ret, x)?),
            Box::new(resolve_arith(vars, ret, y)?),
        ),
        ArithExpr::Div(x, y) => ArithCtx::Div(
            Box::new(resolve_arith(vars, ret, x)?),
            Box::new(resolve_arith(vars, ret, y)?),
        ),
        ArithExpr::Neg(x) => ArithCtx::Neg(Box::new(resolve_arith(vars, ret, x)?)),
    })
}

/// Rewrites a dependency query into an equivalent multievent query (paper
/// Sec. 5.1): each chain edge becomes an event pattern, shared chain
/// entities become entity-ID reuse, and the direction becomes a chain of
/// temporal relationships.
pub fn rewrite_dependency(d: &DependencyQuery) -> Result<MultieventQuery, AiqlError> {
    // Name every entity so chain sharing links adjacent patterns.
    let mut entities: Vec<EntityPat> = d.entities.clone();
    for (i, e) in entities.iter_mut().enumerate() {
        if e.var.is_none() {
            e.var = Some(format!("_dep_e{i}"));
        }
    }

    let mut patterns = Vec::new();
    for (i, (dir, op)) in d.edges.iter().enumerate() {
        let (subj, obj) = match dir {
            EdgeDir::Right => (entities[i].clone(), entities[i + 1].clone()),
            EdgeDir::Left => (entities[i + 1].clone(), entities[i].clone()),
        };
        if subj.kind != EntityKind::Process {
            return Err(AiqlError::at(
                subj.span,
                "the subject side of a dependency edge must be a process",
            )
            .with_help("point the arrow away from the process: `proc p ->[write] file f`"));
        }
        patterns.push(EventPattern {
            span: subj.span.merge(obj.span),
            subject: subj,
            op: op.clone(),
            object: obj,
            evt_var: Some(format!("_dep_evt{i}")),
            evt_cstr: None,
            window: None,
        });
    }

    // Temporal chain: forward ⇒ earlier edges happen earlier.
    let mut relations = Vec::new();
    for i in 0..patterns.len().saturating_sub(1) {
        let (l, r) = (format!("_dep_evt{i}"), format!("_dep_evt{}", i + 1));
        relations.push(Relation::Temporal {
            left: l,
            kind: match d.direction {
                Direction::Forward => TempKind::Before,
                Direction::Backward => TempKind::After,
            },
            range: None,
            right: r,
            span: Span::default(),
        });
    }

    Ok(MultieventQuery {
        global: d.global.clone(),
        patterns,
        relations,
        ret: d.ret.clone(),
        group_by: Vec::new(),
        having: None,
        sort_by: d.sort_by.clone(),
        top: d.top,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn compile(src: &str) -> QueryContext {
        analyze(&parse(src).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> AiqlError {
        match parse(src) {
            Ok(q) => analyze(&q).unwrap_err(),
            Err(e) => e,
        }
    }

    #[test]
    fn query1_context() {
        let ctx = compile(
            r#"
            agentid = 1
            (at "01/01/2017")
            proc p1 start proc p2["%telnet%"] as evt1
            proc p3 start ip ipp[dstport = 4444] as evt2
            proc p4["%apache%"] read file f1["/var/www%"] as evt3
            with p2 = p3, evt1 before evt2, evt3 after evt2
            return p1, p2, p4, f1
            "#,
        );
        assert_eq!(ctx.kind, QueryKind::Multievent);
        assert_eq!(ctx.patterns.len(), 3);
        assert_eq!(ctx.agents, Some(vec![1]));
        assert!(ctx.window.is_some());
        // dstport alias resolved.
        assert!(matches!(
            &ctx.patterns[1].obj_cstr[0],
            CstrNode::Cmp { attr, .. } if attr == "dst_port"
        ));
        // p2 = p3 inferred as id equality.
        match &ctx.relations[0] {
            RelationCtx::Attr { left, right, .. } => {
                assert_eq!(left.attr, "id");
                assert_eq!(left.target, FieldTarget::Object);
                assert_eq!(right.target, FieldTarget::Subject);
                assert_eq!(right.pattern, 1);
            }
            other => panic!("expected attr rel, got {other:?}"),
        }
        // Return infers default attributes.
        match &ctx.ret.items[0].expr {
            RetExprCtx::Field(f) => assert_eq!(f.attr, "exe_name"),
            other => panic!("{other:?}"),
        }
        match &ctx.ret.items[3].expr {
            RetExprCtx::Field(f) => assert_eq!(f.attr, "name"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn entity_reuse_adds_implicit_relations() {
        let ctx = compile(
            r#"
            proc p1 write file f1 as evt1
            proc p2 read file f1 as evt2
            return p1, p2
            "#,
        );
        // f1 reused → implicit id=id between patterns 0 and 1.
        let implicit = ctx
            .relations
            .iter()
            .filter(|r| {
                matches!(r, RelationCtx::Attr { left, right, .. }
                if left.attr == "id" && right.attr == "id")
            })
            .count();
        assert_eq!(implicit, 1);
        let (a, b) = ctx.relations[0].endpoints();
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn bare_value_inference() {
        let ctx = compile(r#"proc p3 read file[".viminfo" || ".bash_history"] as evt2 return p3"#);
        match &ctx.patterns[0].obj_cstr[0] {
            CstrNode::Or(parts) => {
                assert!(matches!(&parts[0], CstrNode::Cmp { attr, .. } if attr == "name"));
            }
            other => panic!("expected or, got {other:?}"),
        }
        // `%` makes it a LIKE.
        let ctx = compile(r#"proc p["%cmd.exe"] read file f return p"#);
        assert!(matches!(
            &ctx.patterns[0].subj_cstr[0],
            CstrNode::Like { attr, neg: false, .. } if attr == "exe_name"
        ));
    }

    #[test]
    fn anomaly_context() {
        let ctx = compile(
            r#"
            (at "01/01/2017")
            window = 1 min
            step = 10 sec
            proc p read ip ipp
            return p, count(distinct ipp) as freq
            group by p
            having freq > 2 * (freq + freq[1] + freq[2]) / 3
            "#,
        );
        assert_eq!(ctx.kind, QueryKind::Anomaly);
        let s = ctx.slide.unwrap();
        assert_eq!(s.window_ns, 60 * 1_000_000_000);
        assert_eq!(s.step_ns, 10 * 1_000_000_000);
        assert_eq!(ctx.group_by, vec![0]);
        assert!(ctx.having.unwrap().uses_history());
    }

    #[test]
    fn dependency_rewrite_forward() {
        let ctx = compile(
            r#"
            (at "01/01/2017")
            forward: proc p1["%/bin/cp%", agentid = 2] ->[write] file f1["%info_stealer%"]
            <-[read] proc p2["%apache%"]
            ->[connect] proc p3[agentid = 3]
            ->[write] file f2["%info_stealer%"]
            return f1, p1, p2, p3, f2
            "#,
        );
        assert_eq!(ctx.kind, QueryKind::Dependency);
        assert_eq!(ctx.patterns.len(), 4);
        // Pattern 1 has subject p2 (the <- flips roles).
        assert_eq!(ctx.patterns[1].subj_var.as_deref(), Some("p2"));
        assert_eq!(ctx.patterns[1].obj_var.as_deref(), Some("f1"));
        // Temporal chain: 3 before-relations.
        let temporals: Vec<_> = ctx
            .relations
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    RelationCtx::Temporal {
                        kind: TempKind::Before,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(temporals.len(), 3);
        // f1 shared between patterns 0 and 1 → implicit id join too.
        assert!(ctx
            .relations
            .iter()
            .any(|r| matches!(r, RelationCtx::Attr { .. })));
        // Agent hoisting from bracket constraints: subject-side only.
        assert_eq!(ctx.patterns[0].agents, Some(vec![2]));
        // `p3[agentid = 3]` is the connect's *object* (a remote process):
        // the event itself is observed on the source host, so no event-level
        // agent pruning may be derived from it.
        assert_eq!(ctx.patterns[2].agents, None);
    }

    #[test]
    fn backward_dependency_flips_temporal() {
        let ctx = compile("backward: file f1 <-[write] proc p1 <-[start] proc p0 return f1, p1");
        assert!(ctx.relations.iter().any(|r| matches!(
            r,
            RelationCtx::Temporal {
                kind: TempKind::After,
                ..
            }
        )));
    }

    #[test]
    fn error_unknown_operation() {
        let e = compile_err("proc p1 touch file f1 return p1");
        assert!(e.message.contains("unknown operation"), "{e}");
        assert!(e.help.is_some());
    }

    #[test]
    fn error_subject_not_process() {
        let e = compile_err("file f1 read file f2 return f1");
        assert!(e.message.contains("subjects must be processes"), "{e}");
    }

    #[test]
    fn error_unknown_attribute_and_identifier() {
        let e = compile_err(r#"proc p1[color = "red"] read file f1 return p1"#);
        assert!(e.message.contains("unknown attribute"), "{e}");
        let e = compile_err("proc p1 read file f1 return p9");
        assert!(e.message.contains("unknown identifier"), "{e}");
        let e = compile_err("proc p1 read file f1 as e1 with e1 before e9 return p1");
        assert!(e.message.contains("unknown event identifier"), "{e}");
    }

    #[test]
    fn error_kind_mismatch_on_reuse() {
        let e = compile_err("proc p1 write file x proc p1 start proc x return p1");
        assert!(e.message.contains("declared as"), "{e}");
    }

    #[test]
    fn error_history_without_window() {
        let e = compile_err(
            "proc p read ip i return p, count(i) as freq group by p having freq > freq[1]",
        );
        assert!(e.message.contains("require `window"), "{e}");
    }

    #[test]
    fn error_window_without_step() {
        let e =
            compile_err("window = 1 min proc p read ip i return p, count(i) as freq group by p");
        assert!(e.message.contains("step"), "{e}");
    }

    #[test]
    fn error_anomaly_without_aggregate() {
        let e = compile_err("window = 1 min step = 10 sec proc p read ip i return p");
        assert!(e.message.contains("must aggregate"), "{e}");
    }

    #[test]
    fn error_group_by_must_be_returned() {
        let e = compile_err("proc p read file f return p group by f");
        assert!(
            e.message.contains("must appear in the return clause"),
            "{e}"
        );
    }

    #[test]
    fn scores_count_constraints() {
        let ctx = compile(
            r#"
            agentid = 1
            proc p1["%a%" && pid > 5] read file f1["/x%"] as e1[amount > 0]
            proc p2 write file f2
            return p1, p2
            "#,
        );
        // p1: 2 subj atoms + 1 obj + 1 evt + agents(1) = 5.
        assert_eq!(ctx.patterns[0].score, 5);
        // p2: only the global agent constraint.
        assert_eq!(ctx.patterns[1].score, 1);
        assert!(ctx.total_constraints() >= 6);
    }

    #[test]
    fn global_agent_in_list_and_window_intersection() {
        let ctx = compile(
            r#"
            agentid in (1, 2)
            (from "2017-01-01" to "2017-01-03")
            (at "01/02/2017")
            proc p read file f
            return p
            "#,
        );
        assert_eq!(ctx.agents, Some(vec![1, 2]));
        let (lo, hi) = ctx.window.unwrap();
        let d2 = Timestamp::from_ymd(2017, 1, 2).unwrap().0;
        let d3 = Timestamp::from_ymd(2017, 1, 3).unwrap().0;
        assert_eq!(lo, d2);
        assert_eq!(hi, d3);
    }

    #[test]
    fn count_flag_context() {
        let ctx = compile("proc p read file f return count distinct p, f");
        assert!(ctx.ret.count);
        assert!(ctx.ret.distinct);
        assert_eq!(ctx.ret.items.len(), 2);
    }
}
