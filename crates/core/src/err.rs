//! Diagnostics: spanned errors with optional help text.

use std::fmt;

/// A byte range in the query source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A compile error for an AIQL query: message, optional location, optional
/// help. The AIQL system's "error reporting" component (paper Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AiqlError {
    pub message: String,
    pub span: Option<Span>,
    pub help: Option<String>,
}

impl AiqlError {
    /// An error with no location.
    pub fn new(message: impl Into<String>) -> AiqlError {
        AiqlError {
            message: message.into(),
            span: None,
            help: None,
        }
    }

    /// An error at `span`.
    pub fn at(span: Span, message: impl Into<String>) -> AiqlError {
        AiqlError {
            message: message.into(),
            span: Some(span),
            help: None,
        }
    }

    /// Attaches a help suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> AiqlError {
        self.help = Some(help.into());
        self
    }

    /// Renders the error against the query source with a caret line, e.g.
    ///
    /// ```text
    /// error: unknown operation `touch`
    ///   | proc p1 touch file f1
    ///   |         ^^^^^
    ///   = help: valid operations are read, write, ...
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = format!("error: {}\n", self.message);
        if let Some(span) = self.span {
            // Locate the line containing the span start.
            let start = span.start.min(source.len());
            let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
            let line_end = source[start..]
                .find('\n')
                .map(|i| start + i)
                .unwrap_or(source.len());
            let line = &source[line_start..line_end];
            let col = start - line_start;
            let width = span.end.min(line_end).saturating_sub(start).max(1);
            out.push_str(&format!("  | {line}\n"));
            out.push_str(&format!("  | {}{}\n", " ".repeat(col), "^".repeat(width)));
        }
        if let Some(h) = &self.help {
            out.push_str(&format!("  = help: {h}\n"));
        }
        out
    }
}

impl fmt::Display for AiqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(h) = &self.help {
            write!(f, " (help: {h})")?;
        }
        Ok(())
    }
}

impl std::error::Error for AiqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "proc p1 touch file f1\nreturn p1";
        let err = AiqlError::at(Span::new(8, 13), "unknown operation `touch`")
            .with_help("valid operations include read, write, start");
        let rendered = err.render(src);
        assert!(rendered.contains("error: unknown operation"));
        assert!(rendered.contains("proc p1 touch file f1"));
        assert!(rendered.contains("        ^^^^^"));
        assert!(rendered.contains("help: valid operations"));
    }

    #[test]
    fn render_without_span() {
        let err = AiqlError::new("boom");
        assert_eq!(err.render(""), "error: boom\n");
    }

    #[test]
    fn render_on_later_line() {
        let src = "agentid = 1\nproc p1 read file f1\nreturn p1";
        let err = AiqlError::at(Span::new(17, 21), "x");
        let rendered = err.render(src);
        assert!(rendered.contains("proc p1 read file f1"));
    }
}
