//! The attribute schema of entities and events (paper Tables 1 and 2), plus
//! the defaults used by AIQL's context-aware attribute inference (Sec. 4.1).

use crate::entity::EntityKind;

/// Attributes of file entities (paper Table 1).
pub const FILE_ATTRS: &[&str] = &["name", "owner", "group", "vol_id", "data_id"];

/// Attributes of process entities (paper Table 1).
pub const PROCESS_ATTRS: &[&str] = &["pid", "exe_name", "user", "cmd", "signature"];

/// Attributes of network-connection entities (paper Table 1).
pub const NETCONN_ATTRS: &[&str] = &["src_ip", "src_port", "dst_ip", "dst_port", "protocol"];

/// Attributes common to every entity kind.
pub const COMMON_ENTITY_ATTRS: &[&str] = &["id", "agentid"];

/// Attributes of events (paper Table 2).
pub const EVENT_ATTRS: &[&str] = &[
    "id",
    "agentid",
    "optype",
    "start_time",
    "end_time",
    "seq",
    "amount",
    "failure",
    "subject_id",
    "object_id",
];

/// The default attribute AIQL infers when a pattern gives only a value:
/// `name` for files, `exe_name` for processes, `dst_ip` for connections.
pub fn default_attr(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::File => "name",
        EntityKind::Process => "exe_name",
        EntityKind::NetConn => "dst_ip",
    }
}

/// The declared attributes of one entity kind (excluding common attributes).
pub fn entity_attrs(kind: EntityKind) -> &'static [&'static str] {
    match kind {
        EntityKind::File => FILE_ATTRS,
        EntityKind::Process => PROCESS_ATTRS,
        EntityKind::NetConn => NETCONN_ATTRS,
    }
}

/// Whether `attr` is a valid attribute name for entities of `kind`.
pub fn is_entity_attr(kind: EntityKind, attr: &str) -> bool {
    COMMON_ENTITY_ATTRS.contains(&attr) || entity_attrs(kind).contains(&attr)
}

/// Whether `attr` is a valid event attribute name.
pub fn is_event_attr(attr: &str) -> bool {
    EVENT_ATTRS.contains(&attr)
}

/// Renders the schema as human-readable text (used by the `repro -- schema`
/// experiment target, reproducing the content of paper Tables 1 and 2).
pub fn describe() -> String {
    let mut out = String::new();
    out.push_str("Table 1: Representative attributes of system entities\n");
    out.push_str(&format!(
        "  File               : {}\n",
        FILE_ATTRS.join(", ")
    ));
    out.push_str(&format!(
        "  Process            : {}\n",
        PROCESS_ATTRS.join(", ")
    ));
    out.push_str(&format!(
        "  Network Connection : {}\n",
        NETCONN_ATTRS.join(", ")
    ));
    out.push_str(&format!(
        "  (common)           : {}\n",
        COMMON_ENTITY_ATTRS.join(", ")
    ));
    out.push_str("Table 2: Representative attributes of system events\n");
    out.push_str(&format!(
        "  Event              : {}\n",
        EVENT_ATTRS.join(", ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(default_attr(EntityKind::File), "name");
        assert_eq!(default_attr(EntityKind::Process), "exe_name");
        assert_eq!(default_attr(EntityKind::NetConn), "dst_ip");
    }

    #[test]
    fn entity_attr_validation() {
        assert!(is_entity_attr(EntityKind::Process, "exe_name"));
        assert!(is_entity_attr(EntityKind::Process, "id"));
        assert!(is_entity_attr(EntityKind::Process, "agentid"));
        assert!(!is_entity_attr(EntityKind::Process, "name"));
        assert!(is_entity_attr(EntityKind::File, "name"));
        assert!(is_entity_attr(EntityKind::NetConn, "dst_port"));
        assert!(!is_entity_attr(EntityKind::File, "dst_ip"));
    }

    #[test]
    fn event_attr_validation() {
        assert!(is_event_attr("optype"));
        assert!(is_event_attr("amount"));
        assert!(!is_event_attr("exe_name"));
    }

    #[test]
    fn describe_lists_all_kinds() {
        let d = describe();
        assert!(d.contains("exe_name"));
        assert!(d.contains("dst_ip"));
        assert!(d.contains("failure"));
    }
}
