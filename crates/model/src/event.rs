//! System events: ⟨subject, operation, object⟩ triples (paper Table 2).

use crate::entity::EntityKind;
use crate::ids::{AgentId, EntityId, EventId};
use crate::time::Timestamp;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation types observed by the monitoring agents.
///
/// The set covers the operations named in the paper's Table 2 plus the
/// network operations its example queries use (`connect`, `accept`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpType {
    Read,
    Write,
    Execute,
    Start,
    End,
    Rename,
    Delete,
    Connect,
    Accept,
}

/// All operation types, in a stable order.
pub const ALL_OPS: [OpType; 9] = [
    OpType::Read,
    OpType::Write,
    OpType::Execute,
    OpType::Start,
    OpType::End,
    OpType::Rename,
    OpType::Delete,
    OpType::Connect,
    OpType::Accept,
];

impl OpType {
    /// The AIQL keyword for this operation.
    pub fn keyword(self) -> &'static str {
        match self {
            OpType::Read => "read",
            OpType::Write => "write",
            OpType::Execute => "execute",
            OpType::Start => "start",
            OpType::End => "end",
            OpType::Rename => "rename",
            OpType::Delete => "delete",
            OpType::Connect => "connect",
            OpType::Accept => "accept",
        }
    }

    /// Parses an operation keyword (case-insensitive).
    pub fn parse_keyword(s: &str) -> Option<OpType> {
        Some(match s.to_ascii_lowercase().as_str() {
            "read" => OpType::Read,
            "write" => OpType::Write,
            "execute" | "exec" => OpType::Execute,
            "start" => OpType::Start,
            "end" | "exit" => OpType::End,
            "rename" => OpType::Rename,
            "delete" | "unlink" => OpType::Delete,
            "connect" => OpType::Connect,
            "accept" => OpType::Accept,
            _ => return None,
        })
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Event category, determined by the object entity kind (paper Sec. 3.1:
/// file events, process events, and network events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventCategory {
    File,
    Process,
    Network,
}

/// A system event: how a process (subject) interacted with a system resource
/// (object) on one host at one time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Unique event identifier.
    pub id: EventId,
    /// Host the event was observed on (spatial property).
    pub agent: AgentId,
    /// Initiating process.
    pub subject: EntityId,
    /// Operation type.
    pub op: OpType,
    /// Target entity.
    pub object: EntityId,
    /// Kind of the target entity (denormalized for category dispatch).
    pub object_kind: EntityKind,
    /// Start time (temporal property).
    pub start: Timestamp,
    /// End time; equals `start` for instantaneous events.
    pub end: Timestamp,
    /// Monotone per-agent sequence number, breaking timestamp ties.
    pub seq: u64,
    /// Bytes transferred, for read/write events (0 otherwise).
    pub amount: i64,
    /// OS failure code; 0 means success.
    pub failure: i32,
}

impl Event {
    /// Creates an instantaneous, successful event.
    pub fn new(
        id: EventId,
        agent: AgentId,
        subject: EntityId,
        op: OpType,
        object: EntityId,
        object_kind: EntityKind,
        start: Timestamp,
    ) -> Event {
        Event {
            id,
            agent,
            subject,
            op,
            object,
            object_kind,
            start,
            end: start,
            seq: 0,
            amount: 0,
            failure: 0,
        }
    }

    /// Sets the transferred byte count, builder style.
    pub fn with_amount(mut self, amount: i64) -> Event {
        self.amount = amount;
        self
    }

    /// Sets the sequence number, builder style.
    pub fn with_seq(mut self, seq: u64) -> Event {
        self.seq = seq;
        self
    }

    /// Sets the end timestamp, builder style.
    pub fn with_end(mut self, end: Timestamp) -> Event {
        self.end = end;
        self
    }

    /// The event category: process and network events sort ahead of file
    /// events in the relationship-based scheduler (paper Algorithm 1, step 2).
    pub fn category(&self) -> EventCategory {
        match self.object_kind {
            EntityKind::File => EventCategory::File,
            EntityKind::Process => EventCategory::Process,
            EntityKind::NetConn => EventCategory::Network,
        }
    }

    /// Looks up an event attribute by AIQL name.
    pub fn attr(&self, name: &str) -> Value {
        match name {
            "id" => Value::Int(self.id.0 as i64),
            "agentid" => Value::Int(self.agent.0 as i64),
            "optype" => Value::str(self.op.keyword()),
            "start_time" | "starttime" => Value::Int(self.start.0),
            "end_time" | "endtime" => Value::Int(self.end.0),
            "seq" | "sequence" => Value::Int(self.seq as i64),
            "amount" => Value::Int(self.amount),
            "failure" | "failure_code" => Value::Int(self.failure as i64),
            "subject_id" => Value::Int(self.subject.0 as i64),
            "object_id" => Value::Int(self.object.0 as i64),
            _ => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::new(
            EventId(5),
            AgentId(2),
            EntityId(10),
            OpType::Write,
            EntityId(11),
            EntityKind::NetConn,
            Timestamp::from_secs(100),
        )
        .with_amount(4096)
        .with_seq(77)
    }

    #[test]
    fn op_keyword_round_trip() {
        for op in ALL_OPS {
            assert_eq!(OpType::parse_keyword(op.keyword()), Some(op));
        }
        assert_eq!(OpType::parse_keyword("EXEC"), Some(OpType::Execute));
        assert_eq!(OpType::parse_keyword("mmap"), None);
    }

    #[test]
    fn category_follows_object_kind() {
        let mut e = sample();
        assert_eq!(e.category(), EventCategory::Network);
        e.object_kind = EntityKind::File;
        assert_eq!(e.category(), EventCategory::File);
        e.object_kind = EntityKind::Process;
        assert_eq!(e.category(), EventCategory::Process);
    }

    #[test]
    fn attribute_lookup() {
        let e = sample();
        assert_eq!(e.attr("optype"), Value::str("write"));
        assert_eq!(e.attr("agentid"), Value::Int(2));
        assert_eq!(e.attr("amount"), Value::Int(4096));
        assert_eq!(e.attr("seq"), Value::Int(77));
        assert_eq!(e.attr("subject_id"), Value::Int(10));
        assert_eq!(e.attr("object_id"), Value::Int(11));
        assert_eq!(e.attr("unknown"), Value::Null);
    }

    #[test]
    fn builder_defaults() {
        let e = sample();
        assert_eq!(e.end, e.start);
        assert_eq!(e.failure, 0);
    }
}
