//! Data model for system monitoring data, following the AIQL paper (Sec. 3.1).
//!
//! System monitoring data records interactions among system resources as
//! *events*. Each event is a ⟨subject, operation, object⟩ triple: the subject
//! is a process, the object is a file, a process, or a network connection, and
//! the operation is a system-call-level interaction such as a file write or a
//! process start. Every entity and event carries the security-relevant
//! attributes of the paper's Tables 1 and 2, and every event is stamped with
//! the host (*agent*) it was observed on and its start/end time — the spatial
//! and temporal properties the storage layer and query engine exploit.
//!
//! # Examples
//!
//! ```
//! use aiql_model::{AgentId, Entity, EntityKind, Event, OpType, Timestamp};
//!
//! let agent = AgentId(1);
//! let proc_ = Entity::process(1.into(), agent, "/usr/bin/bash", 1234);
//! let file = Entity::file(2.into(), agent, "/home/alice/.bash_history");
//! let evt = Event::new(
//!     1.into(),
//!     agent,
//!     proc_.id,
//!     OpType::Read,
//!     file.id,
//!     EntityKind::File,
//!     Timestamp::from_ymd_hms(2017, 1, 1, 10, 0, 0).unwrap(),
//! );
//! assert_eq!(evt.category(), aiql_model::EventCategory::File);
//! ```

pub mod codec;
pub mod dataset;
pub mod dict;
pub mod entity;
pub mod event;
pub mod ids;
pub mod schema;
pub mod time;
pub mod value;

pub use dataset::Dataset;
pub use dict::{Dict, SharedDict, Sym, NULL_SYM};
pub use entity::{AttrMap, Entity, EntityKind};
pub use event::{Event, EventCategory, OpType};
pub use ids::{AgentId, EntityId, EventId};
pub use time::{Duration, TimeUnit, Timestamp};
pub use value::Value;
