//! An in-memory collection of monitoring data: entities plus events.
//!
//! `Dataset` is the hand-off format between the data generator and the
//! storage layer, and the input to reference (brute-force) query evaluation
//! in differential tests.

use crate::entity::Entity;
use crate::event::Event;
use crate::ids::{AgentId, EntityId, EventId};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A set of entities and the events among them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// All entities, in insertion order.
    pub entities: Vec<Entity>,
    /// All events, in insertion order (roughly chronological per agent).
    pub events: Vec<Event>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Adds an entity and returns its ID.
    pub fn add_entity(&mut self, entity: Entity) -> EntityId {
        let id = entity.id;
        self.entities.push(entity);
        id
    }

    /// Adds an event and returns its ID.
    pub fn add_event(&mut self, event: Event) -> EventId {
        let id = event.id;
        self.events.push(event);
        id
    }

    /// Appends all of `other` into `self`.
    pub fn merge(&mut self, other: Dataset) {
        self.entities.extend(other.entities);
        self.events.extend(other.events);
    }

    /// Builds an entity lookup index keyed by ID.
    pub fn entity_index(&self) -> HashMap<EntityId, &Entity> {
        self.entities.iter().map(|e| (e.id, e)).collect()
    }

    /// Looks up an entity by ID (linear scan; use [`Dataset::entity_index`]
    /// for repeated lookups).
    pub fn entity(&self, id: EntityId) -> Option<&Entity> {
        self.entities.iter().find(|e| e.id == id)
    }

    /// The distinct agents observed in the dataset, sorted.
    pub fn agents(&self) -> Vec<AgentId> {
        let mut v: Vec<AgentId> = self.events.iter().map(|e| e.agent).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The minimum and maximum event start times, if any events exist.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        let min = self.events.iter().map(|e| e.start).min()?;
        let max = self.events.iter().map(|e| e.start).max()?;
        Some((min, max))
    }

    /// Sorts events by (start time, sequence) — the canonical ingestion order
    /// after server-side time synchronization.
    pub fn sort_events(&mut self) {
        self.events.sort_by_key(|e| (e.start, e.seq, e.id));
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the dataset holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityKind;
    use crate::event::OpType;

    fn tiny() -> Dataset {
        let mut d = Dataset::new();
        let a = AgentId(1);
        let p = d.add_entity(Entity::process(1.into(), a, "bash", 10));
        let f = d.add_entity(Entity::file(2.into(), a, "/tmp/x"));
        d.add_event(
            Event::new(
                1.into(),
                a,
                p,
                OpType::Write,
                f,
                EntityKind::File,
                Timestamp::from_secs(5),
            )
            .with_seq(2),
        );
        d.add_event(
            Event::new(
                2.into(),
                AgentId(2),
                p,
                OpType::Read,
                f,
                EntityKind::File,
                Timestamp::from_secs(3),
            )
            .with_seq(1),
        );
        d
    }

    #[test]
    fn indexes_and_lookups() {
        let d = tiny();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        let idx = d.entity_index();
        assert_eq!(idx[&EntityId(1)].attr("exe_name").to_string(), "bash");
        assert!(d.entity(EntityId(2)).is_some());
        assert!(d.entity(EntityId(99)).is_none());
    }

    #[test]
    fn agents_and_time_range() {
        let d = tiny();
        assert_eq!(d.agents(), vec![AgentId(1), AgentId(2)]);
        let (lo, hi) = d.time_range().unwrap();
        assert_eq!(lo, Timestamp::from_secs(3));
        assert_eq!(hi, Timestamp::from_secs(5));
        assert!(Dataset::new().time_range().is_none());
    }

    #[test]
    fn sort_orders_by_time_then_seq() {
        let mut d = tiny();
        d.sort_events();
        assert_eq!(d.events[0].id, EventId(2));
        assert_eq!(d.events[1].id, EventId(1));
    }

    #[test]
    fn merge_concatenates() {
        let mut d = tiny();
        let d2 = tiny();
        d.merge(d2);
        assert_eq!(d.len(), 4);
        assert_eq!(d.entities.len(), 4);
    }
}
