//! Dictionary encoding for hot string attributes.
//!
//! Attack-investigation predicates compare the same few string attributes
//! over and over (executable names, file paths, destination IPs). A
//! [`Dict`] interns each distinct string once and hands out a dense
//! [`Sym`] — a `u32` code — so columnar storage can keep those columns as
//! flat `u32` vectors and predicate kernels can compare codes instead of
//! walking heap strings. One dictionary is shared per store: every table's
//! projection interns into the same code space, so a symbol compiled from a
//! query literal is valid against any column.
//!
//! Interning is exact (case-sensitive, byte equality), matching the strict
//! `Value::Str` equality of the row store; case-insensitive `LIKE`
//! matching stays on the row path.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// An interned string code. Codes are dense, starting at 0, and never
/// reused; [`NULL_SYM`] is reserved for SQL NULL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// The reserved symbol standing for NULL in a dictionary-encoded column.
/// Never returned by [`Dict::intern`].
pub const NULL_SYM: u32 = u32::MAX;

/// An append-only string interner: string → dense `u32` code.
#[derive(Debug, Default)]
pub struct Dict {
    strings: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Dict {
        Dict::default()
    }

    /// Interns `s`, returning its (possibly pre-existing) symbol.
    ///
    /// # Panics
    ///
    /// Panics if the dictionary would exceed [`NULL_SYM`] distinct strings.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&c) = self.codes.get(s) {
            return Sym(c);
        }
        let code = self.strings.len() as u32;
        assert!(code != NULL_SYM, "dictionary full");
        self.strings.push(s.to_string());
        self.codes.insert(s.to_string(), code);
        Sym(code)
    }

    /// The symbol of `s`, if it has been interned.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.codes.get(s).copied().map(Sym)
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: Sym) -> Option<&str> {
        self.strings.get(sym.0 as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings in code order (`strings()[i]` has code `i`) —
    /// the snapshot form of a dictionary. Re-interning them in order into
    /// an empty dictionary reproduces the exact code assignment.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }
}

/// A cloneable, thread-safe dictionary handle — the "one shared dictionary
/// per store" of the columnar layout. Readers (query compilation) and
/// writers (ingestion) synchronize on an internal `RwLock`.
#[derive(Debug, Clone, Default)]
pub struct SharedDict {
    inner: Arc<RwLock<Dict>>,
}

impl SharedDict {
    /// A fresh, empty shared dictionary.
    pub fn new() -> SharedDict {
        SharedDict::default()
    }

    /// Interns `s` (write lock).
    pub fn intern(&self, s: &str) -> Sym {
        self.inner.write().expect("dict lock poisoned").intern(s)
    }

    /// The symbol of `s` without interning (read lock) — query literals not
    /// in the dictionary can match nothing.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.inner.read().expect("dict lock poisoned").lookup(s)
    }

    /// The string behind a symbol, cloned out of the lock.
    pub fn resolve(&self, sym: Sym) -> Option<String> {
        self.inner
            .read()
            .expect("dict lock poisoned")
            .resolve(sym)
            .map(String::from)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().expect("dict lock poisoned").len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every interned string in code order (cloned out of
    /// the lock) — what the durable store persists.
    pub fn strings(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("dict lock poisoned")
            .strings()
            .to_vec()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = Dict::new();
        let a = d.intern("cmd.exe");
        let b = d.intern("osql.exe");
        assert_eq!(a, Sym(0));
        assert_eq!(b, Sym(1));
        assert_eq!(d.intern("cmd.exe"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(a), Some("cmd.exe"));
        assert_eq!(d.resolve(Sym(9)), None);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut d = Dict::new();
        assert_eq!(d.lookup("x"), None);
        d.intern("x");
        assert_eq!(d.lookup("x"), Some(Sym(0)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn interning_is_case_sensitive() {
        let mut d = Dict::new();
        let a = d.intern("CMD.EXE");
        let b = d.intern("cmd.exe");
        assert_ne!(a, b, "strict equality, like Value::Str ==");
    }

    #[test]
    fn shared_dict_is_consistent_across_clones() {
        let d = SharedDict::new();
        let d2 = d.clone();
        let a = d.intern("alpha");
        assert_eq!(d2.lookup("alpha"), Some(a));
        assert_eq!(d2.resolve(a).as_deref(), Some("alpha"));
        assert_eq!(d2.len(), 1);
        assert!(!d2.is_empty());
    }

    #[test]
    fn shared_dict_threads_agree() {
        let d = SharedDict::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        d.intern(&format!("s{}", i % 10));
                    }
                });
            }
        });
        assert_eq!(d.len(), 10, "concurrent interns deduplicate");
    }
}
