//! Timestamps, durations, and the calendar arithmetic needed to parse the
//! temporal constraints of AIQL queries.
//!
//! The paper's data model gives every event a start/end time and partitions
//! storage by *day*; AIQL queries accept US-style (`01/31/2017`) and ISO 8601
//! (`2017-01-31`) date formats at several granularities. Timestamps here are
//! nanoseconds since the Unix epoch, which comfortably covers the audit-data
//! range while keeping arithmetic integral and total.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Nanoseconds per second.
pub const NANOS_PER_SEC: i64 = 1_000_000_000;
/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A point in time: nanoseconds since the Unix epoch (UTC).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// A span of time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub i64);

/// Time units accepted by AIQL temporal expressions (`within [1-2 minutes]`,
/// `window = 1 min`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeUnit {
    Millisecond,
    Second,
    Minute,
    Hour,
    Day,
}

impl TimeUnit {
    /// Parses a unit name; accepts the singular, plural, and abbreviated
    /// spellings used in the paper's example queries.
    pub fn parse(s: &str) -> Option<TimeUnit> {
        Some(match s.to_ascii_lowercase().as_str() {
            "ms" | "millisecond" | "milliseconds" => TimeUnit::Millisecond,
            "s" | "sec" | "secs" | "second" | "seconds" => TimeUnit::Second,
            "min" | "mins" | "minute" | "minutes" => TimeUnit::Minute,
            "h" | "hour" | "hours" => TimeUnit::Hour,
            "d" | "day" | "days" => TimeUnit::Day,
            _ => return None,
        })
    }

    /// Number of nanoseconds in one unit.
    pub fn nanos(self) -> i64 {
        match self {
            TimeUnit::Millisecond => 1_000_000,
            TimeUnit::Second => NANOS_PER_SEC,
            TimeUnit::Minute => 60 * NANOS_PER_SEC,
            TimeUnit::Hour => 3_600 * NANOS_PER_SEC,
            TimeUnit::Day => SECS_PER_DAY * NANOS_PER_SEC,
        }
    }
}

impl Duration {
    /// Builds a duration from a count of `unit`s.
    pub fn of(count: i64, unit: TimeUnit) -> Duration {
        Duration(count * unit.nanos())
    }

    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Duration in whole nanoseconds.
    pub fn as_nanos(self) -> i64 {
        self.0
    }

    /// Duration in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
}

// Civil-calendar conversion, after Howard Hinnant's `days_from_civil`
// algorithms: exact for all i64-representable days, no external dependency.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn valid_ymd(y: i64, m: u32, d: u32) -> bool {
    if !(1..=12).contains(&m) || d < 1 {
        return false;
    }
    let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
    let dim = match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if leap {
                29
            } else {
                28
            }
        }
        _ => return false,
    };
    d <= dim
}

impl Timestamp {
    /// The earliest representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The latest representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Builds a timestamp for midnight (00:00:00 UTC) of a calendar date.
    ///
    /// Returns `None` when the date is not a valid civil date.
    pub fn from_ymd(y: i64, m: u32, d: u32) -> Option<Timestamp> {
        if !valid_ymd(y, m, d) {
            return None;
        }
        Some(Timestamp(
            days_from_civil(y, m, d) * SECS_PER_DAY * NANOS_PER_SEC,
        ))
    }

    /// Builds a timestamp for a calendar date plus a time of day.
    pub fn from_ymd_hms(y: i64, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Option<Timestamp> {
        if hh >= 24 || mm >= 60 || ss >= 60 {
            return None;
        }
        let base = Timestamp::from_ymd(y, m, d)?;
        Some(Timestamp(
            base.0 + (hh as i64 * 3_600 + mm as i64 * 60 + ss as i64) * NANOS_PER_SEC,
        ))
    }

    /// Builds a timestamp from whole seconds since the epoch.
    pub fn from_secs(s: i64) -> Timestamp {
        Timestamp(s * NANOS_PER_SEC)
    }

    /// The day index (days since the epoch) this timestamp falls on; the
    /// storage layer uses it as the temporal partition key.
    pub fn day_index(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY * NANOS_PER_SEC)
    }

    /// Midnight of the day this timestamp falls on.
    pub fn day_start(self) -> Timestamp {
        Timestamp(self.day_index() * SECS_PER_DAY * NANOS_PER_SEC)
    }

    /// The civil date (year, month, day) of this timestamp.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days(self.day_index())
    }

    /// The time of day as (hour, minute, second).
    pub fn hms(self) -> (u32, u32, u32) {
        let secs = self.0.div_euclid(NANOS_PER_SEC).rem_euclid(SECS_PER_DAY);
        (
            (secs / 3_600) as u32,
            ((secs % 3_600) / 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// Adds a duration, saturating at the representable range.
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Subtracts a duration, saturating at the representable range.
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Signed distance from `other` to `self`.
    pub fn since(self, other: Timestamp) -> Duration {
        Duration(self.0 - other.0)
    }

    /// Parses the datetime formats AIQL accepts:
    /// `MM/DD/YYYY`, `MM/DD/YYYY HH:MM[:SS]`, `YYYY-MM-DD`,
    /// `YYYY-MM-DD[T ]HH:MM[:SS]`.
    pub fn parse(s: &str) -> Option<Timestamp> {
        let s = s.trim();
        let (date_part, time_part) = match s.split_once(['T', ' ']) {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let (y, m, d) = if date_part.contains('/') {
            // US format MM/DD/YYYY.
            let mut it = date_part.splitn(3, '/');
            let m: u32 = it.next()?.parse().ok()?;
            let d: u32 = it.next()?.parse().ok()?;
            let y: i64 = it.next()?.parse().ok()?;
            (y, m, d)
        } else {
            // ISO 8601 YYYY-MM-DD.
            let mut it = date_part.splitn(3, '-');
            let y: i64 = it.next()?.parse().ok()?;
            let m: u32 = it.next()?.parse().ok()?;
            let d: u32 = it.next()?.parse().ok()?;
            (y, m, d)
        };
        match time_part {
            None => Timestamp::from_ymd(y, m, d),
            Some(t) => {
                let mut it = t.splitn(3, ':');
                let hh: u32 = it.next()?.trim().parse().ok()?;
                let mm: u32 = it.next()?.trim().parse().ok()?;
                let ss: u32 = match it.next() {
                    Some(x) => x.trim().parse().ok()?,
                    None => 0,
                };
                Timestamp::from_ymd_hms(y, m, d, hh, mm, ss)
            }
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let (hh, mm, ss) = self.hms();
        let sub = self.0.rem_euclid(NANOS_PER_SEC);
        if sub == 0 {
            write!(f, "{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}")
        } else {
            write!(f, "{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}.{:09}", sub)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let t = Timestamp::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(t.0, 0);
        assert_eq!(t.day_index(), 0);
    }

    #[test]
    fn civil_round_trip_across_leap_years() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2016, 2, 29),
            (2017, 1, 1),
            (2017, 12, 31),
            (2100, 3, 1),
            (1969, 7, 20),
        ] {
            let t = Timestamp::from_ymd(y, m, d).unwrap();
            assert_eq!(t.ymd(), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Timestamp::from_ymd(2017, 2, 29).is_none());
        assert!(Timestamp::from_ymd(2017, 13, 1).is_none());
        assert!(Timestamp::from_ymd(2017, 0, 1).is_none());
        assert!(Timestamp::from_ymd(2017, 4, 31).is_none());
        assert!(Timestamp::from_ymd_hms(2017, 1, 1, 24, 0, 0).is_none());
    }

    #[test]
    fn parses_us_format() {
        let t = Timestamp::parse("01/01/2017").unwrap();
        assert_eq!(t, Timestamp::from_ymd(2017, 1, 1).unwrap());
        let t = Timestamp::parse("1/31/2017 10:30").unwrap();
        assert_eq!(t, Timestamp::from_ymd_hms(2017, 1, 31, 10, 30, 0).unwrap());
    }

    #[test]
    fn parses_iso_format() {
        let t = Timestamp::parse("2017-01-01").unwrap();
        assert_eq!(t, Timestamp::from_ymd(2017, 1, 1).unwrap());
        let t = Timestamp::parse("2017-01-01T10:30:05").unwrap();
        assert_eq!(t, Timestamp::from_ymd_hms(2017, 1, 1, 10, 30, 5).unwrap());
        let t = Timestamp::parse("2017-01-01 23:59:59").unwrap();
        assert_eq!(t, Timestamp::from_ymd_hms(2017, 1, 1, 23, 59, 59).unwrap());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Timestamp::parse("").is_none());
        assert!(Timestamp::parse("not a date").is_none());
        assert!(Timestamp::parse("2017-01").is_none());
        assert!(Timestamp::parse("99/99/2017").is_none());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let t = Timestamp::from_ymd_hms(2017, 6, 15, 13, 1, 2).unwrap();
        assert_eq!(Timestamp::parse(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn day_arithmetic() {
        let t = Timestamp::from_ymd_hms(2017, 1, 2, 12, 0, 0).unwrap();
        assert_eq!(t.day_start(), Timestamp::from_ymd(2017, 1, 2).unwrap());
        assert_eq!(
            t.day_index() - Timestamp::from_ymd(2017, 1, 1).unwrap().day_index(),
            1
        );
    }

    #[test]
    fn units_and_durations() {
        assert_eq!(TimeUnit::parse("minutes"), Some(TimeUnit::Minute));
        assert_eq!(TimeUnit::parse("SEC"), Some(TimeUnit::Second));
        assert_eq!(TimeUnit::parse("fortnight"), None);
        assert_eq!(
            Duration::of(2, TimeUnit::Minute).as_nanos(),
            120 * NANOS_PER_SEC
        );
        let t = Timestamp::from_secs(100);
        assert_eq!(
            t.saturating_add(Duration::of(1, TimeUnit::Second)),
            Timestamp::from_secs(101)
        );
        assert_eq!(t.since(Timestamp::from_secs(40)).as_secs_f64(), 60.0);
    }

    #[test]
    fn negative_timestamps_floor_correctly() {
        // 1969-12-31 23:00 is day -1.
        let t = Timestamp(-3_600 * NANOS_PER_SEC);
        assert_eq!(t.day_index(), -1);
        assert_eq!(t.ymd(), (1969, 12, 31));
        assert_eq!(t.hms(), (23, 0, 0));
    }
}
