//! System entities: files, processes, and network connections (paper Table 1).

use crate::ids::{AgentId, EntityId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The three entity kinds of the AIQL data model.
///
/// Existing provenance work (and the paper, Sec. 3.1) observes that on modern
/// operating systems the security-relevant system resources are files,
/// processes, and network connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    File,
    Process,
    NetConn,
}

impl EntityKind {
    /// The AIQL keyword for this kind (`file`, `proc`, `ip`).
    pub fn keyword(self) -> &'static str {
        match self {
            EntityKind::File => "file",
            EntityKind::Process => "proc",
            EntityKind::NetConn => "ip",
        }
    }

    /// Parses an AIQL entity-type keyword.
    pub fn parse_keyword(s: &str) -> Option<EntityKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "file" => EntityKind::File,
            "proc" | "process" => EntityKind::Process,
            "ip" | "conn" | "connection" => EntityKind::NetConn,
            _ => return None,
        })
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Attribute name → value map; ordered for deterministic iteration.
pub type AttrMap = BTreeMap<String, Value>;

/// A system entity with its security-related attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Globally unique identifier.
    pub id: EntityId,
    /// Host the entity was observed on.
    pub agent: AgentId,
    /// File, process, or network connection.
    pub kind: EntityKind,
    /// Attribute map (see [`crate::schema`] for per-kind attribute names).
    pub attrs: AttrMap,
}

impl Entity {
    /// Creates an entity with an empty attribute map.
    pub fn new(id: EntityId, agent: AgentId, kind: EntityKind) -> Entity {
        Entity {
            id,
            agent,
            kind,
            attrs: AttrMap::new(),
        }
    }

    /// Convenience constructor for a file entity with a path name.
    pub fn file(id: EntityId, agent: AgentId, name: impl Into<String>) -> Entity {
        let mut e = Entity::new(id, agent, EntityKind::File);
        e.attrs.insert("name".into(), Value::str(name));
        e
    }

    /// Convenience constructor for a process entity with an executable name
    /// and PID.
    pub fn process(id: EntityId, agent: AgentId, exe: impl Into<String>, pid: i64) -> Entity {
        let mut e = Entity::new(id, agent, EntityKind::Process);
        e.attrs.insert("exe_name".into(), Value::str(exe));
        e.attrs.insert("pid".into(), Value::Int(pid));
        e
    }

    /// Convenience constructor for a network-connection entity.
    pub fn netconn(
        id: EntityId,
        agent: AgentId,
        src_ip: impl Into<String>,
        src_port: i64,
        dst_ip: impl Into<String>,
        dst_port: i64,
    ) -> Entity {
        let mut e = Entity::new(id, agent, EntityKind::NetConn);
        e.attrs.insert("src_ip".into(), Value::str(src_ip));
        e.attrs.insert("src_port".into(), Value::Int(src_port));
        e.attrs.insert("dst_ip".into(), Value::str(dst_ip));
        e.attrs.insert("dst_port".into(), Value::Int(dst_port));
        e.attrs.insert("protocol".into(), Value::str("tcp"));
        e
    }

    /// Sets an attribute, builder style.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<Value>) -> Entity {
        self.attrs.insert(name.into(), value.into());
        self
    }

    /// Looks up an attribute; `id` and `agentid` resolve to the built-in
    /// identifier fields, everything else to the attribute map.
    pub fn attr(&self, name: &str) -> Value {
        match name {
            "id" => Value::Int(self.id.0 as i64),
            "agentid" => Value::Int(self.agent.0 as i64),
            _ => self.attrs.get(name).cloned().unwrap_or(Value::Null),
        }
    }

    /// The default attribute used by AIQL's context-aware inference: `name`
    /// for files, `exe_name` for processes, `dst_ip` for connections.
    pub fn default_attr(&self) -> Value {
        self.attr(crate::schema::default_attr(self.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for k in [EntityKind::File, EntityKind::Process, EntityKind::NetConn] {
            assert_eq!(EntityKind::parse_keyword(k.keyword()), Some(k));
        }
        assert_eq!(
            EntityKind::parse_keyword("process"),
            Some(EntityKind::Process)
        );
        assert_eq!(EntityKind::parse_keyword("socket"), None);
    }

    #[test]
    fn constructors_populate_attrs() {
        let f = Entity::file(1.into(), AgentId(9), "/etc/passwd");
        assert_eq!(f.attr("name"), Value::str("/etc/passwd"));
        assert_eq!(f.attr("agentid"), Value::Int(9));
        assert_eq!(f.attr("id"), Value::Int(1));
        assert_eq!(f.attr("nonexistent"), Value::Null);

        let p = Entity::process(2.into(), AgentId(9), "bash", 42);
        assert_eq!(p.attr("exe_name"), Value::str("bash"));
        assert_eq!(p.attr("pid"), Value::Int(42));

        let c = Entity::netconn(3.into(), AgentId(9), "10.0.0.1", 5000, "10.0.0.2", 80);
        assert_eq!(c.attr("dst_ip"), Value::str("10.0.0.2"));
        assert_eq!(c.attr("dst_port"), Value::Int(80));
    }

    #[test]
    fn default_attr_per_kind() {
        let f = Entity::file(1.into(), AgentId(1), "x");
        let p = Entity::process(2.into(), AgentId(1), "y", 1);
        let c = Entity::netconn(3.into(), AgentId(1), "a", 1, "b", 2);
        assert_eq!(f.default_attr(), Value::str("x"));
        assert_eq!(p.default_attr(), Value::str("y"));
        assert_eq!(c.default_attr(), Value::str("b"));
    }

    #[test]
    fn with_attr_builder() {
        let p = Entity::process(1.into(), AgentId(1), "svc", 7)
            .with_attr("user", "SYSTEM")
            .with_attr("signed", true);
        assert_eq!(p.attr("user"), Value::str("SYSTEM"));
        assert_eq!(p.attr("signed"), Value::Bool(true));
    }
}
