//! Identifier newtypes for entities, events, and monitoring agents.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a system entity (file, process, or network connection).
///
/// Entity IDs are unique across the whole enterprise deployment, not just
/// within one host; the generating agent embeds its own ID when minting them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u64);

/// Unique identifier of a system event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u64);

/// Unique identifier of the monitoring agent (host) an entity/event was
/// observed on — the *spatial* dimension of the data model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(pub u32);

impl From<u64> for EntityId {
    fn from(v: u64) -> Self {
        EntityId(v)
    }
}

impl From<u64> for EventId {
    fn from(v: u64) -> Self {
        EventId(v)
    }
}

impl From<u32> for AgentId {
    fn from(v: u32) -> Self {
        AgentId(v)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ev{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(EntityId(7).to_string(), "e7");
        assert_eq!(EventId(7).to_string(), "ev7");
        assert_eq!(AgentId(7).to_string(), "agent7");
    }

    #[test]
    fn conversions() {
        assert_eq!(EntityId::from(3u64), EntityId(3));
        assert_eq!(EventId::from(3u64), EventId(3));
        assert_eq!(AgentId::from(3u32), AgentId(3));
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(EventId(10) > EventId(9));
    }
}
