//! Attribute values with a total order and SQL-`LIKE`-style matching.
//!
//! AIQL attribute constraints compare entity/event attributes against string,
//! integer, and floating-point literals, and string literals may contain `%`
//! wildcards (e.g. `"%cmd.exe"`). A single [`Value`] type flows end to end:
//! entity attributes, query literals, and aggregate results.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed attribute value.
///
/// `Value` implements a *total* order (needed for sorting result rows and for
/// B-tree index keys): values of different types order by type tag first, and
/// floats order by `f64::total_cmp`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absent / NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer (also used for timestamps in row form).
    Int(i64),
    /// 64-bit float (aggregate results such as `avg`).
    Float(f64),
    /// UTF-8 string (names, paths, IPs, commands).
    Str(String),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Returns the contained integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a float when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }

    /// Compares two values numerically when both are numeric (so `Int(2)`
    /// equals `Float(2.0)`), otherwise falls back to the total order.
    pub fn loose_cmp(&self, other: &Value) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.total_cmp(&b),
            _ => self.cmp(other),
        }
    }

    /// Loose equality: numeric values compare by magnitude across `Int` and
    /// `Float`; everything else compares structurally.
    pub fn loose_eq(&self, other: &Value) -> bool {
        self.loose_cmp(other) == Ordering::Equal
    }

    /// SQL-`LIKE`-style wildcard match with `%` (any substring, including
    /// empty). Matching is case-insensitive, mirroring the Windows-heavy
    /// audit data of the paper's deployment. A pattern without `%` degrades
    /// to a case-insensitive equality test.
    ///
    /// # Examples
    ///
    /// ```
    /// use aiql_model::Value;
    /// let v = Value::str("C:\\Windows\\cmd.exe");
    /// assert!(v.like("%cmd.exe"));
    /// assert!(v.like("c:\\%"));
    /// assert!(!v.like("%powershell%"));
    /// ```
    pub fn like(&self, pattern: &str) -> bool {
        match self {
            Value::Str(s) => like_match(s, pattern),
            _ => false,
        }
    }
}

/// Case-insensitive `%`-wildcard matching.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let parts: Vec<String> = pattern
        .to_lowercase()
        .split('%')
        .map(String::from)
        .collect();
    if parts.len() == 1 {
        return t.iter().collect::<String>() == parts[0];
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        let chars: Vec<char> = part.chars().collect();
        if chars.is_empty() {
            continue;
        }
        if i == 0 {
            // Must be a prefix.
            if t.len() < chars.len() || t[..chars.len()] != chars[..] {
                return false;
            }
            pos = chars.len();
        } else if i == parts.len() - 1 {
            // Must be a suffix at or after `pos`.
            if t.len() < pos + chars.len() {
                return false;
            }
            return t[t.len() - chars.len()..] == chars[..];
        } else {
            // Find the next occurrence at or after `pos`.
            match find_sub(&t, &chars, pos) {
                Some(at) => pos = at + chars.len(),
                None => return false,
            }
        }
    }
    true
}

fn find_sub(haystack: &[char], needle: &[char], from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from);
    }
    if haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| haystack[i..i + needle.len()] == *needle)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_across_types() {
        let mut vs = vec![
            Value::str("a"),
            Value::Int(1),
            Value::Null,
            Value::Float(0.5),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(1),
                Value::Float(0.5),
                Value::str("a"),
            ]
        );
    }

    #[test]
    fn loose_numeric_equality() {
        assert!(Value::Int(2).loose_eq(&Value::Float(2.0)));
        assert!(!Value::Int(2).loose_eq(&Value::Float(2.5)));
        assert_eq!(
            Value::Int(3).loose_cmp(&Value::Float(2.5)),
            Ordering::Greater
        );
        // Strict equality stays type-sensitive.
        assert_ne!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn like_prefix_suffix_infix() {
        let v = Value::str("/var/www/html/info_stealer.sh");
        assert!(v.like("/var/www%"));
        assert!(v.like("%info_stealer%"));
        assert!(v.like("%.sh"));
        assert!(v.like("%"));
        assert!(v.like("/var/%/html/%.sh"));
        assert!(!v.like("/etc%"));
        assert!(!v.like("%exe"));
    }

    #[test]
    fn like_exact_and_case_insensitive() {
        assert!(Value::str("CMD.EXE").like("cmd.exe"));
        assert!(Value::str("BACKUP1.DMP").like("%backup1.dmp"));
        assert!(!Value::str("cmd.exe").like("cmd"));
        assert!(!Value::Int(5).like("5"));
    }

    #[test]
    fn like_adjacent_wildcards_and_empty() {
        assert!(Value::str("abc").like("a%%c"));
        assert!(Value::str("").like("%"));
        assert!(Value::str("").like(""));
        assert!(!Value::str("").like("a"));
        assert!(Value::str("aa").like("%a%a%"));
        assert!(!Value::str("a").like("%a%a%"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("x").to_string(), "x");
    }

    #[test]
    fn hash_distinguishes_float_bits() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Float(1.0));
        s.insert(Value::Float(1.0));
        s.insert(Value::Int(1));
        assert_eq!(s.len(), 2);
    }
}
