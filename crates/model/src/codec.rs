//! Length-prefixed binary codecs for the durable store.
//!
//! The write-ahead log (`aiql-wal`) and the snapshot files of
//! `aiql-storage` persist model objects in a compact little-endian binary
//! form. Everything here is deliberately boring: fixed-width integers,
//! `u32`-length-prefixed byte strings, and one tag byte per variant, so a
//! record can be decoded without any schema negotiation and a truncated
//! buffer fails cleanly with [`std::io::ErrorKind::UnexpectedEof`].
//!
//! Malformed input (an unknown tag, invalid UTF-8, an out-of-range code)
//! decodes to [`std::io::ErrorKind::InvalidData`] — corruption is an error,
//! never a panic.

use crate::entity::{Entity, EntityKind};
use crate::event::{Event, OpType, ALL_OPS};
use crate::ids::{AgentId, EntityId, EventId};
use crate::time::Timestamp;
use crate::value::Value;
use std::io::{self, Read, Write};

/// Hard cap on any length prefix (strings, attribute maps), guarding decode
/// against allocating from a corrupt length field.
pub const MAX_LEN: u32 = 1 << 28;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes a `u8`.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads a `u8`.
pub fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a `u32` (little-endian).
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` (little-endian).
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` (little-endian).
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64` (little-endian).
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `i64` (little-endian).
pub fn write_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads an `i64` (little-endian).
pub fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}

/// Writes a string as `u32` length + UTF-8 bytes. Enforces the same
/// [`MAX_LEN`] cap as [`read_str`] — a record the reader would reject must
/// never be written (and acknowledged) in the first place.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    let len = u32::try_from(s.len())
        .ok()
        .filter(|len| *len <= MAX_LEN)
        .ok_or_else(|| bad(format!("string length {} exceeds cap", s.len())))?;
    write_u32(w, len)?;
    w.write_all(s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string.
pub fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)?;
    if len > MAX_LEN {
        return Err(bad(format!("string length {len} exceeds cap")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("invalid UTF-8 in string"))
}

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;

/// Writes a [`Value`] as one tag byte plus its payload.
pub fn write_value<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    match v {
        Value::Null => write_u8(w, VAL_NULL),
        Value::Bool(b) => {
            write_u8(w, VAL_BOOL)?;
            write_u8(w, *b as u8)
        }
        Value::Int(i) => {
            write_u8(w, VAL_INT)?;
            write_i64(w, *i)
        }
        Value::Float(x) => {
            write_u8(w, VAL_FLOAT)?;
            write_u64(w, x.to_bits())
        }
        Value::Str(s) => {
            write_u8(w, VAL_STR)?;
            write_str(w, s)
        }
    }
}

/// Reads a [`Value`].
pub fn read_value<R: Read>(r: &mut R) -> io::Result<Value> {
    Ok(match read_u8(r)? {
        VAL_NULL => Value::Null,
        VAL_BOOL => Value::Bool(read_u8(r)? != 0),
        VAL_INT => Value::Int(read_i64(r)?),
        VAL_FLOAT => Value::Float(f64::from_bits(read_u64(r)?)),
        VAL_STR => Value::Str(read_str(r)?),
        tag => return Err(bad(format!("unknown value tag {tag}"))),
    })
}

/// The stable integer code of an operation type (its position in
/// [`ALL_OPS`]).
pub fn op_code(op: OpType) -> u8 {
    ALL_OPS
        .iter()
        .position(|o| *o == op)
        .expect("op in ALL_OPS") as u8
}

/// The operation type behind a code.
pub fn op_from_code(code: u8) -> Option<OpType> {
    ALL_OPS.get(code as usize).copied()
}

/// The stable integer code of an entity kind.
pub fn kind_code(kind: EntityKind) -> u8 {
    match kind {
        EntityKind::File => 0,
        EntityKind::Process => 1,
        EntityKind::NetConn => 2,
    }
}

/// The entity kind behind a code.
pub fn kind_from_code(code: u8) -> Option<EntityKind> {
    Some(match code {
        0 => EntityKind::File,
        1 => EntityKind::Process,
        2 => EntityKind::NetConn,
        _ => return None,
    })
}

/// Writes an [`Event`] (fixed-width fields, no length prefix needed).
pub fn write_event<W: Write>(w: &mut W, ev: &Event) -> io::Result<()> {
    write_u64(w, ev.id.0)?;
    write_u32(w, ev.agent.0)?;
    write_u64(w, ev.subject.0)?;
    write_u8(w, op_code(ev.op))?;
    write_u64(w, ev.object.0)?;
    write_u8(w, kind_code(ev.object_kind))?;
    write_i64(w, ev.start.0)?;
    write_i64(w, ev.end.0)?;
    write_u64(w, ev.seq)?;
    write_i64(w, ev.amount)?;
    write_i64(w, ev.failure as i64)
}

/// Reads an [`Event`].
pub fn read_event<R: Read>(r: &mut R) -> io::Result<Event> {
    let id = EventId(read_u64(r)?);
    let agent = AgentId(read_u32(r)?);
    let subject = EntityId(read_u64(r)?);
    let op = op_from_code(read_u8(r)?).ok_or_else(|| bad("unknown op code"))?;
    let object = EntityId(read_u64(r)?);
    let object_kind = kind_from_code(read_u8(r)?).ok_or_else(|| bad("unknown entity kind code"))?;
    let start = Timestamp(read_i64(r)?);
    let end = Timestamp(read_i64(r)?);
    let seq = read_u64(r)?;
    let amount = read_i64(r)?;
    let failure = read_i64(r)? as i32;
    Ok(Event {
        id,
        agent,
        subject,
        op,
        object,
        object_kind,
        start,
        end,
        seq,
        amount,
        failure,
    })
}

/// Writes an [`Entity`] (ids, kind, then the attribute map).
pub fn write_entity<W: Write>(w: &mut W, e: &Entity) -> io::Result<()> {
    write_u64(w, e.id.0)?;
    write_u32(w, e.agent.0)?;
    write_u8(w, kind_code(e.kind))?;
    let n = u32::try_from(e.attrs.len())
        .ok()
        .filter(|n| *n <= MAX_LEN)
        .ok_or_else(|| bad("too many attributes"))?;
    write_u32(w, n)?;
    for (name, value) in &e.attrs {
        write_str(w, name)?;
        write_value(w, value)?;
    }
    Ok(())
}

/// Reads an [`Entity`].
pub fn read_entity<R: Read>(r: &mut R) -> io::Result<Entity> {
    let id = EntityId(read_u64(r)?);
    let agent = AgentId(read_u32(r)?);
    let kind = kind_from_code(read_u8(r)?).ok_or_else(|| bad("unknown entity kind code"))?;
    let n = read_u32(r)?;
    if n > MAX_LEN {
        return Err(bad("attribute count exceeds cap"));
    }
    let mut e = Entity::new(id, agent, kind);
    for _ in 0..n {
        let name = read_str(r)?;
        let value = read_value(r)?;
        e.attrs.insert(name, value);
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_value(v: Value) {
        let mut buf = Vec::new();
        write_value(&mut buf, &v).unwrap();
        let got = read_value(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn values_round_trip() {
        round_trip_value(Value::Null);
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Int(i64::MIN));
        round_trip_value(Value::Float(-0.0));
        round_trip_value(Value::Float(f64::NAN)); // bit-exact via to_bits
        round_trip_value(Value::str("π/паth/c:\\x"));
        round_trip_value(Value::str(""));
    }

    #[test]
    fn events_round_trip() {
        let ev = Event::new(
            7.into(),
            AgentId(3),
            10.into(),
            OpType::Connect,
            11.into(),
            EntityKind::NetConn,
            Timestamp(-5),
        )
        .with_amount(4096)
        .with_seq(u64::MAX)
        .with_end(Timestamp(9));
        let mut failed = ev.clone();
        failed.failure = -2;
        for e in [ev, failed] {
            let mut buf = Vec::new();
            write_event(&mut buf, &e).unwrap();
            assert_eq!(read_event(&mut Cursor::new(&buf)).unwrap(), e);
        }
    }

    #[test]
    fn entities_round_trip() {
        let ents = [
            Entity::process(1.into(), AgentId(2), "cmd.exe", 42)
                .with_attr("signed", true)
                .with_attr("score", 0.5),
            Entity::file(2.into(), AgentId(2), "/etc/passwd"),
            Entity::netconn(3.into(), AgentId(9), "10.0.0.1", 1000, "10.0.0.2", 443),
            Entity::new(4.into(), AgentId(0), EntityKind::File),
        ];
        for e in ents {
            let mut buf = Vec::new();
            write_entity(&mut buf, &e).unwrap();
            assert_eq!(read_entity(&mut Cursor::new(&buf)).unwrap(), e);
        }
    }

    #[test]
    fn op_and_kind_codes_round_trip() {
        for op in ALL_OPS {
            assert_eq!(op_from_code(op_code(op)), Some(op));
        }
        assert_eq!(op_from_code(200), None);
        for k in [EntityKind::File, EntityKind::Process, EntityKind::NetConn] {
            assert_eq!(kind_from_code(kind_code(k)), Some(k));
        }
        assert_eq!(kind_from_code(9), None);
    }

    #[test]
    fn corruption_is_an_error_not_a_panic() {
        // Unknown tag.
        assert!(read_value(&mut Cursor::new(&[99u8])).is_err());
        // Truncated payload.
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::str("hello")).unwrap();
        assert!(read_value(&mut Cursor::new(&buf[..buf.len() - 2])).is_err());
        // Absurd length prefix.
        let mut buf = vec![VAL_STR];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_value(&mut Cursor::new(&buf)).is_err());
        // Invalid UTF-8.
        let mut buf = vec![VAL_STR];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_value(&mut Cursor::new(&buf)).is_err());
        // Bad op code inside an event.
        let ev = Event::new(
            1.into(),
            AgentId(0),
            1.into(),
            OpType::Read,
            2.into(),
            EntityKind::File,
            Timestamp(0),
        );
        let mut buf = Vec::new();
        write_event(&mut buf, &ev).unwrap();
        buf[20] = 200; // the op tag follows id(8) + agent(4) + subject(8)
        assert!(read_event(&mut Cursor::new(&buf)).is_err());
    }
}
