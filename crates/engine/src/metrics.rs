//! aiql-engine's telemetry handles, resolved once against the global
//! [`aiql_telemetry::Registry`] and recorded lock-free afterwards.

use aiql_telemetry::trace::SpanNode;
use aiql_telemetry::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Handles for every engine-layer metric.
pub(crate) struct EngineMetrics {
    /// Statements executed through [`crate::Engine::run_ctx`] — the common
    /// funnel of the session, legacy, and live entry points.
    pub statements: Counter,
    /// `Session::prepare` wall time (cache hits and misses alike).
    pub prepare_micros: Histogram,
    /// Full statement execution wall time.
    pub execute_micros: Histogram,
    /// Scheduler planning (pattern scoring) time per statement.
    pub plan_micros: Histogram,
    /// Per-pattern data-query scan time.
    pub scan_micros: Histogram,
    /// Tuple-set create/extend/merge time per join step.
    pub join_micros: Histogram,
    /// Result assembly (projection, aggregation, sort) time.
    pub score_micros: Histogram,
    /// Executions at or above the slow-query threshold.
    pub slow_queries: Counter,
    /// Rows streamed out of cursors.
    pub cursor_rows: Counter,
    /// `Cursor::fetch` batches served.
    pub cursor_fetches: Counter,
    /// Entries resident in the process-wide legacy plan cache.
    pub legacy_cache_entries: Gauge,
    /// Shard-scan tasks submitted to the execution pool.
    pub pool_tasks: Counter,
    /// Per-task wait between submission and a worker picking it up.
    pub pool_queue_wait_micros: Histogram,
    /// Worker threads alive in the execution pool.
    pub pool_workers: Gauge,
    /// Per-shard scan wall time (one sample per scattered shard scan).
    pub shard_scan_micros: Histogram,
    /// Rows returned per scattered shard scan.
    pub shard_scan_rows: Histogram,
}

pub(crate) fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = aiql_telemetry::global();
        EngineMetrics {
            statements: r.counter("aiql_engine_statements_total"),
            prepare_micros: r.histogram("aiql_engine_prepare_micros"),
            execute_micros: r.histogram("aiql_engine_execute_micros"),
            plan_micros: r.histogram("aiql_engine_plan_micros"),
            scan_micros: r.histogram("aiql_engine_scan_micros"),
            join_micros: r.histogram("aiql_engine_join_micros"),
            score_micros: r.histogram("aiql_engine_score_micros"),
            slow_queries: r.counter("aiql_engine_slow_queries_total"),
            cursor_rows: r.counter("aiql_engine_cursor_rows_total"),
            cursor_fetches: r.counter("aiql_engine_cursor_fetches_total"),
            legacy_cache_entries: r.gauge("aiql_engine_legacy_plan_cache_entries"),
            pool_tasks: r.counter("aiql_engine_pool_tasks"),
            pool_queue_wait_micros: r.histogram("aiql_engine_pool_queue_wait_micros"),
            pool_workers: r.gauge("aiql_engine_pool_workers"),
            shard_scan_micros: r.histogram("aiql_engine_shard_scan_micros"),
            shard_scan_rows: r.histogram("aiql_engine_shard_scan_rows"),
        }
    })
}

/// Folds a finished execution trace into the per-phase histograms: every
/// direct child of the root is one recorded phase sample.
pub(crate) fn record_phases(m: &EngineMetrics, tree: &SpanNode) {
    for c in &tree.children {
        match c.name.as_str() {
            "plan" => m.plan_micros.record(c.micros),
            "join" => m.join_micros.record(c.micros),
            "score" => m.score_micros.record(c.micros),
            s if s.starts_with("scan:") => m.scan_micros.record(c.micros),
            _ => {}
        }
    }
}
