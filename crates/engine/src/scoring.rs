//! Pruning-score models for the relationship-based scheduler.
//!
//! The paper's Algorithm 1 scores an event pattern by its *number of
//! constraints*, and its Sec. 7 discussion proposes refining this with
//! record statistics ("considering the number of records in different hosts
//! and different time periods and constructing a statistical model of
//! constraint pruning power"). This module implements both:
//!
//! - [`ScoreModel::ConstraintCount`] — the paper's default,
//! - [`ScoreModel::DataStatistics`] — the Sec. 7 refinement: estimate each
//!   pattern's match cardinality from cheap store statistics (partition row
//!   counts after pruning, entity-filter selectivities measured against the
//!   indexed entity tables, operation-mix fractions) and score by the
//!   negated log-cardinality, so fewer estimated matches ⇒ more pruning
//!   power.
//!
//! The `ablation` Criterion bench and `tests/ablation.rs` compare the two.

use crate::pattern::{EngineStats, StoreRef};
use crate::synth::synthesize;
use aiql_core::QueryContext;
use aiql_model::EntityKind;
use aiql_rdb::Prune;
use aiql_storage::schema;

/// How the scheduler estimates pattern pruning power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreModel {
    /// The paper's Algorithm 1: count the constraints in the pattern.
    #[default]
    ConstraintCount,
    /// The paper's Sec. 7 refinement: estimate match cardinalities from
    /// store statistics.
    DataStatistics,
}

/// Computes per-pattern scores under the chosen model (higher = executed
/// earlier).
pub fn scores(model: ScoreModel, store: StoreRef<'_>, ctx: &QueryContext) -> Vec<u32> {
    match model {
        ScoreModel::ConstraintCount => ctx.patterns.iter().map(|p| p.score).collect(),
        ScoreModel::DataStatistics => statistical_scores(store, ctx),
    }
}

fn statistical_scores(store: StoreRef<'_>, ctx: &QueryContext) -> Vec<u32> {
    // Total entity counts, for selectivity denominators (entity tables are
    // small; a full count scan is cheap and runs once per query).
    let mut throwaway = EngineStats::default();
    let totals = entity_totals(&store, &mut throwaway);
    ctx.patterns
        .iter()
        .map(|p| {
            let est = pattern_estimate(&store, p, &totals, &mut throwaway);
            // Fewer estimated matches ⇒ higher score. log2(2^40) headroom.
            (40.0 - (est + 1.0).log2()).max(0.0).round() as u32
        })
        .collect()
}

/// Total rows per entity kind, ordered `[File, Process, NetConn]`.
fn entity_totals(store: &StoreRef<'_>, stats: &mut EngineStats) -> [f64; 3] {
    let mut total =
        |kind: EntityKind| -> f64 { entity_count(store, kind, &[], stats).max(1) as f64 };
    [
        total(EntityKind::File),
        total(EntityKind::Process),
        total(EntityKind::NetConn),
    ]
}

/// Estimated match cardinality of one pattern's data query: events in the
/// admitted partitions × uniform operation-mix fraction × measured
/// entity-filter selectivities.
fn pattern_estimate(
    store: &StoreRef<'_>,
    p: &aiql_core::PatternCtx,
    totals: &[f64; 3],
    stats: &mut EngineStats,
) -> f64 {
    let q = synthesize(p);
    let base = estimate_events(store, &q.prune) as f64;
    let op_frac = p.ops.len() as f64 / aiql_model::event::ALL_OPS.len() as f64;
    let subj_frac = if q.subject.is_empty() {
        1.0
    } else {
        entity_count(store, EntityKind::Process, &q.subject, stats) as f64 / totals[1]
    };
    let kind_idx = match p.object_kind {
        EntityKind::File => 0,
        EntityKind::Process => 1,
        EntityKind::NetConn => 2,
    };
    let obj_frac = if q.object.is_empty() {
        1.0
    } else {
        entity_count(store, p.object_kind, &q.object, stats) as f64 / totals[kind_idx]
    };
    (base * op_frac * subj_frac.max(1e-6) * obj_frac.max(1e-6)).max(0.0)
}

/// Estimated match rows for every pattern of `ctx`, from the same store
/// statistics the [`ScoreModel::DataStatistics`] scorer uses — the
/// "estimated rows" column of the session API's `EXPLAIN`.
pub fn estimate_rows(store: StoreRef<'_>, ctx: &QueryContext) -> Vec<u64> {
    let mut throwaway = EngineStats::default();
    let totals = entity_totals(&store, &mut throwaway);
    ctx.patterns
        .iter()
        .map(|p| pattern_estimate(&store, p, &totals, &mut throwaway).round() as u64)
        .collect()
}

fn entity_count(
    store: &StoreRef<'_>,
    kind: EntityKind,
    conjuncts: &[aiql_rdb::Expr],
    stats: &mut EngineStats,
) -> usize {
    // `scan_entities` is index-accelerated for equality probes; LIKE
    // filters fall back to a scan of the (small) entity table.
    store_scan_entities(store, kind, conjuncts, stats).len()
}

fn store_scan_entities(
    store: &StoreRef<'_>,
    kind: EntityKind,
    conjuncts: &[aiql_rdb::Expr],
    stats: &mut EngineStats,
) -> Vec<aiql_rdb::Row> {
    let mut scanned = 0u64;
    let rows = match store {
        StoreRef::Single(s) => s.scan_entities(kind, conjuncts, &mut scanned),
        StoreRef::Segmented(s) => {
            let parts = s
                .sdb()
                .run_on_all(|db| {
                    let t = db
                        .plain(schema::entity_table(kind))
                        .expect("entity tables are plain");
                    let mut local = 0u64;
                    let (_, pos) = t.select(conjuncts, &mut local);
                    Ok(pos
                        .into_iter()
                        .map(|p| t.row(p).clone())
                        .collect::<Vec<_>>())
                })
                .expect("entity scan");
            parts.into_iter().flatten().collect()
        }
    };
    stats.rows_scanned += scanned;
    rows
}

fn estimate_events(store: &StoreRef<'_>, prune: &Prune) -> u64 {
    match store {
        StoreRef::Single(s) => match s.events_partitioned() {
            Some(pt) => pt
                .partitions_for(prune)
                .iter()
                .map(|(_, t)| t.len() as u64)
                .sum(),
            None => s.event_count() as u64,
        },
        StoreRef::Segmented(s) => s
            .sdb()
            .run_on_all(|db| {
                Ok(db
                    .partitioned(schema::EVENTS)
                    .map(|pt| {
                        pt.partitions_for(prune)
                            .iter()
                            .map(|(_, t)| t.len() as u64)
                            .sum::<u64>()
                    })
                    .unwrap_or(0))
            })
            .map(|v| v.into_iter().sum())
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;
    use aiql_model::{AgentId, Dataset, Entity, Event, OpType, Timestamp};
    use aiql_storage::{EventStore, StoreConfig};

    /// A dataset where constraint counting is misleading: `noisy.exe`
    /// matches a 3-constraint pattern on every row, while a 1-constraint
    /// exact name pins a single rare process.
    fn misleading() -> Dataset {
        let mut d = Dataset::new();
        let a = AgentId(1);
        let t0 = Timestamp::from_ymd(2017, 1, 1).unwrap().0;
        let rare =
            d.add_entity(Entity::process(1.into(), a, "rare.exe", 5).with_attr("user", "svc"));
        let f = d.add_entity(Entity::file(2.into(), a, "/data/x"));
        d.add_event(Event::new(
            1.into(),
            a,
            rare,
            OpType::Write,
            f,
            aiql_model::EntityKind::File,
            Timestamp(t0),
        ));
        for i in 0..200u64 {
            let p = d.add_entity(
                Entity::process((10 + i).into(), a, format!("noisy{i}.exe"), 100 + i as i64)
                    .with_attr("user", "alice"),
            );
            let g = d.add_entity(Entity::file((1000 + i).into(), a, format!("/tmp/{i}")));
            d.add_event(Event::new(
                (10 + i).into(),
                a,
                p,
                OpType::Read,
                g,
                aiql_model::EntityKind::File,
                Timestamp(t0 + i as i64 * 1_000),
            ));
        }
        d
    }

    const QUERY: &str = r#"
        proc p1[pid >= 0 && pid <= 1000000 && user != "nobody"] read file f1 as e1
        proc p2["rare.exe"] write file f2 as e2
        with e1 after e2
        return p1, p2
    "#;

    #[test]
    fn constraint_count_is_fooled_statistics_are_not() {
        let store = EventStore::ingest(&misleading(), StoreConfig::partitioned()).unwrap();
        let ctx = compile(QUERY).unwrap();
        let by_count = scores(ScoreModel::ConstraintCount, StoreRef::Single(&store), &ctx);
        let by_stats = scores(ScoreModel::DataStatistics, StoreRef::Single(&store), &ctx);
        // Constraint counting ranks the noisy pattern (3 atoms) above the
        // selective one (1 atom)...
        assert!(by_count[0] > by_count[1], "count model: {by_count:?}");
        // ...while the statistical model inverts that.
        assert!(by_stats[1] > by_stats[0], "stats model: {by_stats:?}");
    }

    #[test]
    fn statistics_reflect_partition_pruning() {
        let store = EventStore::ingest(&misleading(), StoreConfig::partitioned()).unwrap();
        // A pattern on an empty day estimates ~0 matches → max-ish score.
        let ctx = compile(r#"(at "06/01/2019") proc p read file f as e1 return p"#).unwrap();
        let s = scores(ScoreModel::DataStatistics, StoreRef::Single(&store), &ctx);
        assert!(s[0] >= 39, "empty window should score near the cap: {s:?}");
    }

    #[test]
    fn both_models_cover_all_patterns() {
        let store = EventStore::ingest(&misleading(), StoreConfig::partitioned()).unwrap();
        let ctx = compile(QUERY).unwrap();
        for model in [ScoreModel::ConstraintCount, ScoreModel::DataStatistics] {
            assert_eq!(scores(model, StoreRef::Single(&store), &ctx).len(), 2);
        }
    }
}
