//! Tuple-set algebra for the relationship-based scheduler (Algorithm 1).
//!
//! The scheduler maintains a map `M` from event-pattern IDs to the tuple set
//! containing their execution results. Tuple sets are created from pairs of
//! result sets, extended with fresh results, filtered in place, and merged,
//! exactly as the paper's Algorithm 1 prescribes. Joins use hashing when the
//! relationship is an attribute equality and a deadline-checked nested loop
//! otherwise (temporal order, inequalities).

use crate::error::EngineError;
use crate::layout::{resolve_field, START_COL};
use crate::pattern::{Deadline, EngineStats};
use aiql_core::ast::{CmpOp as AstCmp, TempKind};
use aiql_core::{QueryContext, RelationCtx};
use aiql_rdb::{Row, Value};
use std::collections::HashMap;

/// Maximum tuples a single set may hold before the engine reports a
/// resource failure (the in-memory analogue of the baselines' blow-ups).
pub const MAX_TUPLES: usize = 2_000_000;

#[inline]
fn push_tuple(tuples: &mut Vec<Vec<u32>>, t: Vec<u32>) -> Result<(), EngineError> {
    if tuples.len() >= MAX_TUPLES {
        return Err(EngineError::Resource);
    }
    tuples.push(t);
    Ok(())
}

/// `t ++ [j]` allocated at exact capacity — the per-probe-hit tuple copy of
/// `extend`. A `clone()` followed by `push` would allocate `t.len()` and
/// immediately reallocate; this does one allocation and one memcpy.
#[inline]
fn extended(t: &[u32], j: u32) -> Vec<u32> {
    let mut nt = Vec::with_capacity(t.len() + 1);
    nt.extend_from_slice(t);
    nt.push(j);
    nt
}

/// Evaluable form of a relationship: match-row column positions resolved.
#[derive(Debug, Clone)]
pub enum RelEval {
    Attr {
        left_pattern: usize,
        left_col: usize,
        op: AstCmp,
        right_pattern: usize,
        right_col: usize,
    },
    Temporal {
        left_pattern: usize,
        kind: TempKind,
        range_ns: Option<(i64, i64)>,
        right_pattern: usize,
    },
}

impl RelEval {
    /// Resolves a context relationship against the query's patterns.
    pub fn build(rel: &RelationCtx, ctx: &QueryContext) -> Result<RelEval, EngineError> {
        Ok(match rel {
            RelationCtx::Attr { left, op, right } => RelEval::Attr {
                left_pattern: left.pattern,
                left_col: resolve_field(left, ctx.patterns[left.pattern].object_kind)?,
                op: *op,
                right_pattern: right.pattern,
                right_col: resolve_field(right, ctx.patterns[right.pattern].object_kind)?,
            },
            RelationCtx::Temporal {
                left,
                kind,
                range_ns,
                right,
            } => RelEval::Temporal {
                left_pattern: *left,
                kind: *kind,
                range_ns: *range_ns,
                right_pattern: *right,
            },
        })
    }

    /// The two patterns this relationship connects.
    pub fn endpoints(&self) -> (usize, usize) {
        match self {
            RelEval::Attr {
                left_pattern,
                right_pattern,
                ..
            } => (*left_pattern, *right_pattern),
            RelEval::Temporal {
                left_pattern,
                right_pattern,
                ..
            } => (*left_pattern, *right_pattern),
        }
    }

    /// Whether rows `l` (for the left pattern) and `r` (right) satisfy the
    /// relationship.
    pub fn holds(&self, l: &Row, r: &Row) -> bool {
        match self {
            RelEval::Attr {
                left_col,
                op,
                right_col,
                ..
            } => {
                let (a, b) = (&l[*left_col], &r[*right_col]);
                if a.is_null() || b.is_null() {
                    return false;
                }
                let ord = a.loose_cmp(b);
                match op {
                    AstCmp::Eq => ord == std::cmp::Ordering::Equal,
                    AstCmp::Ne => ord != std::cmp::Ordering::Equal,
                    AstCmp::Lt => ord == std::cmp::Ordering::Less,
                    AstCmp::Le => ord != std::cmp::Ordering::Greater,
                    AstCmp::Gt => ord == std::cmp::Ordering::Greater,
                    AstCmp::Ge => ord != std::cmp::Ordering::Less,
                }
            }
            RelEval::Temporal { kind, range_ns, .. } => {
                let tl = l[START_COL].as_int().unwrap_or(0);
                let tr = r[START_COL].as_int().unwrap_or(0);
                match kind {
                    TempKind::Before => match range_ns {
                        None => tl < tr,
                        Some((lo, hi)) => tr - tl >= *lo && tr - tl <= *hi,
                    },
                    TempKind::After => match range_ns {
                        None => tl > tr,
                        Some((lo, hi)) => tl - tr >= *lo && tl - tr <= *hi,
                    },
                    TempKind::Within => match range_ns {
                        None => tl == tr,
                        Some((lo, hi)) => {
                            let gap = (tl - tr).abs();
                            gap >= *lo && gap <= *hi
                        }
                    },
                }
            }
        }
    }

    /// Whether this relationship is a hash-joinable attribute equality.
    pub fn is_equi(&self) -> bool {
        matches!(self, RelEval::Attr { op: AstCmp::Eq, .. })
    }
}

/// Execution results of all patterns: `per_pattern[i]` is `Some(rows)` once
/// pattern `i` has executed.
#[derive(Debug, Default)]
pub struct Matches {
    pub per_pattern: Vec<Option<Vec<Row>>>,
}

impl Matches {
    /// An empty table for `n` patterns.
    pub fn new(n: usize) -> Matches {
        Matches {
            per_pattern: (0..n).map(|_| None).collect(),
        }
    }

    /// The rows of an executed pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern has not executed — a scheduler bug.
    pub fn rows(&self, pattern: usize) -> &[Row] {
        self.per_pattern[pattern]
            .as_deref()
            .expect("pattern executed before use")
    }

    /// Whether pattern `i` has executed.
    pub fn executed(&self, pattern: usize) -> bool {
        self.per_pattern[pattern].is_some()
    }
}

/// A set of joined tuples over a list of patterns. `tuples[t][k]` indexes
/// into `matches.rows(patterns[k])`.
#[derive(Debug, Clone, Default)]
pub struct TupleSet {
    pub patterns: Vec<usize>,
    pub tuples: Vec<Vec<u32>>,
}

impl TupleSet {
    /// A singleton set over one executed pattern.
    pub fn singleton(pattern: usize, n_rows: usize) -> TupleSet {
        TupleSet {
            patterns: vec![pattern],
            tuples: (0..n_rows as u32).map(|i| vec![i]).collect(),
        }
    }

    /// Position of `pattern` within this set's tuple layout.
    pub fn slot(&self, pattern: usize) -> Option<usize> {
        self.patterns.iter().position(|&p| p == pattern)
    }

    /// Creates a tuple set from two fresh result sets related by `rel`
    /// (Algorithm 1: `T ← S_i × S_j |rel`).
    pub fn create(
        matches: &Matches,
        i: usize,
        j: usize,
        rels: &[&RelEval],
        deadline: Deadline,
        stats: &mut EngineStats,
    ) -> Result<TupleSet, EngineError> {
        let _join = aiql_telemetry::trace::span("join");
        let si = matches.rows(i);
        let sj = matches.rows(j);
        let mut out = TupleSet {
            patterns: vec![i, j],
            tuples: Vec::new(),
        };
        // Hash join on the first equi-relationship; residual-check the rest.
        if let Some(equi) = rels.iter().find(|r| r.is_equi()) {
            let (lcol, rcol, lp) = match equi {
                RelEval::Attr {
                    left_col,
                    right_col,
                    left_pattern,
                    ..
                } => (*left_col, *right_col, *left_pattern),
                RelEval::Temporal { .. } => unreachable!("is_equi"),
            };
            // Orient: which side of the rel is pattern i?
            let (icol, jcol) = if lp == i { (lcol, rcol) } else { (rcol, lcol) };
            let mut built: HashMap<&Value, Vec<u32>> = HashMap::new();
            for (jj, row) in sj.iter().enumerate() {
                built.entry(&row[jcol]).or_default().push(jj as u32);
            }
            for (ii, irow) in si.iter().enumerate() {
                deadline.check()?;
                if let Some(cands) = built.get(&irow[icol]) {
                    for &jj in cands {
                        stats.join_work += 1;
                        if check_all(rels, i, j, irow, &sj[jj as usize]) {
                            push_tuple(&mut out.tuples, vec![ii as u32, jj])?;
                        }
                    }
                }
            }
        } else {
            for (ii, irow) in si.iter().enumerate() {
                deadline.check()?;
                for (jj, jrow) in sj.iter().enumerate() {
                    stats.join_work += 1;
                    if check_all(rels, i, j, irow, jrow) {
                        push_tuple(&mut out.tuples, vec![ii as u32, jj as u32])?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Extends this set with a newly executed pattern `j` (Algorithm 1:
    /// `T' ← T ×S_j |rel`).
    pub fn extend(
        &self,
        matches: &Matches,
        j: usize,
        rels: &[&RelEval],
        deadline: Deadline,
        stats: &mut EngineStats,
    ) -> Result<TupleSet, EngineError> {
        let _join = aiql_telemetry::trace::span("join");
        let sj = matches.rows(j);
        let mut out = TupleSet {
            patterns: {
                let mut p = self.patterns.clone();
                p.push(j);
                p
            },
            tuples: Vec::new(),
        };
        // Hash path: an equi-rel between a pattern of this set and j.
        let equi = rels.iter().find(|r| r.is_equi());
        if let Some(RelEval::Attr {
            left_pattern,
            left_col,
            right_col,
            right_pattern,
            ..
        }) = equi
        {
            let (in_set_pat, in_set_col, jcol) = if *right_pattern == j {
                (*left_pattern, *left_col, *right_col)
            } else {
                (*right_pattern, *right_col, *left_col)
            };
            let slot = self.slot(in_set_pat).expect("relation endpoint in set");
            let in_rows = matches.rows(in_set_pat);
            let mut built: HashMap<&Value, Vec<u32>> = HashMap::new();
            for (jj, row) in sj.iter().enumerate() {
                built.entry(&row[jcol]).or_default().push(jj as u32);
            }
            for t in &self.tuples {
                deadline.check()?;
                let irow = &in_rows[t[slot] as usize];
                if let Some(cands) = built.get(&irow[in_set_col]) {
                    for &jj in cands {
                        stats.join_work += 1;
                        if self.tuple_matches(matches, t, j, &sj[jj as usize], rels) {
                            push_tuple(&mut out.tuples, extended(t, jj))?;
                        }
                    }
                }
            }
        } else {
            for t in &self.tuples {
                deadline.check()?;
                for (jj, jrow) in sj.iter().enumerate() {
                    stats.join_work += 1;
                    if self.tuple_matches(matches, t, j, jrow, rels) {
                        push_tuple(&mut out.tuples, extended(t, jj as u32))?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Checks all `rels` between this set's tuple `t` and candidate row
    /// `jrow` for pattern `j`.
    fn tuple_matches(
        &self,
        matches: &Matches,
        t: &[u32],
        j: usize,
        jrow: &Row,
        rels: &[&RelEval],
    ) -> bool {
        rels.iter().all(|rel| {
            let (l, r) = rel.endpoints();
            if l == j && r == j {
                return true;
            }
            if l == j {
                let slot = self.slot(r).expect("endpoint in set");
                let rrow = &matches.rows(r)[t[slot] as usize];
                rel.holds(jrow, rrow)
            } else if r == j {
                let slot = self.slot(l).expect("endpoint in set");
                let lrow = &matches.rows(l)[t[slot] as usize];
                rel.holds(lrow, jrow)
            } else {
                true
            }
        })
    }

    /// Filters tuples in place by a relationship whose both endpoints are in
    /// this set (Algorithm 1: `T' ← T_i |rel`).
    pub fn filter(&mut self, matches: &Matches, rel: &RelEval) {
        let (l, r) = rel.endpoints();
        let (Some(ls), Some(rs)) = (self.slot(l), self.slot(r)) else {
            return;
        };
        let lrows = matches.rows(l);
        let rrows = matches.rows(r);
        self.tuples
            .retain(|t| rel.holds(&lrows[t[ls] as usize], &rrows[t[rs] as usize]));
    }

    /// Merges two disjoint tuple sets, filtering by `rels` (which may be
    /// empty for the final cartesian merge of Algorithm 1 step 5).
    pub fn merge(
        a: &TupleSet,
        b: &TupleSet,
        matches: &Matches,
        rels: &[&RelEval],
        deadline: Deadline,
        stats: &mut EngineStats,
    ) -> Result<TupleSet, EngineError> {
        let _join = aiql_telemetry::trace::span("join");
        let mut out = TupleSet {
            patterns: a.patterns.iter().chain(&b.patterns).copied().collect(),
            tuples: Vec::new(),
        };
        for ta in &a.tuples {
            deadline.check()?;
            'next: for tb in &b.tuples {
                stats.join_work += 1;
                for rel in rels {
                    let (l, r) = rel.endpoints();
                    let (lrow, rrow) = match (
                        a.slot(l).map(|s| &matches.rows(l)[ta[s] as usize]),
                        b.slot(l).map(|s| &matches.rows(l)[tb[s] as usize]),
                        a.slot(r).map(|s| &matches.rows(r)[ta[s] as usize]),
                        b.slot(r).map(|s| &matches.rows(r)[tb[s] as usize]),
                    ) {
                        (Some(lr), _, _, Some(rr)) => (lr, rr),
                        (_, Some(lr), Some(rr), _) => (lr, rr),
                        _ => continue,
                    };
                    if !rel.holds(lrow, rrow) {
                        continue 'next;
                    }
                }
                let mut nt = Vec::with_capacity(ta.len() + tb.len());
                nt.extend_from_slice(ta);
                nt.extend_from_slice(tb);
                push_tuple(&mut out.tuples, nt)?;
            }
        }
        Ok(out)
    }
}

fn check_all(rels: &[&RelEval], i: usize, j: usize, irow: &Row, jrow: &Row) -> bool {
    rels.iter().all(|rel| {
        let (l, r) = rel.endpoints();
        if l == i && r == j {
            rel.holds(irow, jrow)
        } else if l == j && r == i {
            rel.holds(jrow, irow)
        } else {
            true
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MATCH_WIDTH;

    /// A match row with the given event start time and subject id.
    fn row(start: i64, subj_id: i64) -> Row {
        let mut r = vec![Value::Null; MATCH_WIDTH];
        r[START_COL] = Value::Int(start);
        r[crate::layout::SUBJ_OFF] = Value::Int(subj_id);
        r
    }

    fn matches2(a: Vec<Row>, b: Vec<Row>) -> Matches {
        Matches {
            per_pattern: vec![Some(a), Some(b)],
        }
    }

    fn attr_eq() -> RelEval {
        RelEval::Attr {
            left_pattern: 0,
            left_col: crate::layout::SUBJ_OFF,
            op: AstCmp::Eq,
            right_pattern: 1,
            right_col: crate::layout::SUBJ_OFF,
        }
    }

    fn before() -> RelEval {
        RelEval::Temporal {
            left_pattern: 0,
            kind: TempKind::Before,
            range_ns: None,
            right_pattern: 1,
        }
    }

    #[test]
    fn create_hash_join_on_equi() {
        let m = matches2(
            vec![row(1, 10), row(2, 20)],
            vec![row(3, 10), row(4, 30), row(5, 10)],
        );
        let rel = attr_eq();
        let mut stats = EngineStats::default();
        let ts = TupleSet::create(&m, 0, 1, &[&rel], Deadline::none(), &mut stats).unwrap();
        assert_eq!(ts.tuples.len(), 2, "subject 10 matches rows 0 and 2");
        // Hash join probes only matching candidates.
        assert_eq!(stats.join_work, 2);
    }

    #[test]
    fn create_nested_loop_on_temporal() {
        let m = matches2(vec![row(1, 0), row(10, 0)], vec![row(5, 0)]);
        let rel = before();
        let mut stats = EngineStats::default();
        let ts = TupleSet::create(&m, 0, 1, &[&rel], Deadline::none(), &mut stats).unwrap();
        assert_eq!(ts.tuples, vec![vec![0, 0]], "only t=1 is before t=5");
        assert_eq!(stats.join_work, 2, "nested loop considers all pairs");
    }

    #[test]
    fn temporal_with_range_and_within() {
        let l = row(1_000, 0);
        let r = row(3_000, 0);
        let rel = RelEval::Temporal {
            left_pattern: 0,
            kind: TempKind::Before,
            range_ns: Some((1_000, 2_500)),
            right_pattern: 1,
        };
        assert!(rel.holds(&l, &r), "gap 2000 within [1000, 2500]");
        let rel = RelEval::Temporal {
            left_pattern: 0,
            kind: TempKind::Before,
            range_ns: Some((2_500, 9_000)),
            right_pattern: 1,
        };
        assert!(!rel.holds(&l, &r), "gap 2000 below 2500");
        let rel = RelEval::Temporal {
            left_pattern: 0,
            kind: TempKind::Within,
            range_ns: Some((0, 5_000)),
            right_pattern: 1,
        };
        assert!(rel.holds(&r, &l), "within is symmetric");
    }

    #[test]
    fn extend_filters_against_all_set_members() {
        let m = Matches {
            per_pattern: vec![
                Some(vec![row(1, 7)]),
                Some(vec![row(5, 7)]),
                Some(vec![row(3, 7), row(9, 7)]),
            ],
        };
        let r01 = attr_eq();
        let mut stats = EngineStats::default();
        let ts = TupleSet::create(&m, 0, 1, &[&r01], Deadline::none(), &mut stats).unwrap();
        // Extend with pattern 2 under: evt0 before evt2 AND evt2 before evt1.
        let r02 = RelEval::Temporal {
            left_pattern: 0,
            kind: TempKind::Before,
            range_ns: None,
            right_pattern: 2,
        };
        let r21 = RelEval::Temporal {
            left_pattern: 2,
            kind: TempKind::Before,
            range_ns: None,
            right_pattern: 1,
        };
        let ts2 = ts
            .extend(&m, 2, &[&r02, &r21], Deadline::none(), &mut stats)
            .unwrap();
        assert_eq!(
            ts2.tuples,
            vec![vec![0, 0, 0]],
            "only t=3 sits between 1 and 5"
        );
    }

    #[test]
    fn filter_in_place() {
        let m = matches2(vec![row(10, 0), row(1, 0)], vec![row(5, 0)]);
        let mut stats = EngineStats::default();
        let mut ts = TupleSet::create(&m, 0, 1, &[], Deadline::none(), &mut stats).unwrap();
        assert_eq!(ts.tuples.len(), 2, "no relation: full cross product");
        ts.filter(&m, &before());
        assert_eq!(ts.tuples, vec![vec![1, 0]]);
    }

    #[test]
    fn merge_disjoint_sets_with_relation() {
        let m = Matches {
            per_pattern: vec![
                Some(vec![row(1, 0)]),
                Some(vec![row(2, 0)]),
                Some(vec![row(3, 0)]),
                Some(vec![row(0, 0), row(9, 0)]),
            ],
        };
        let mut stats = EngineStats::default();
        let a = TupleSet::create(&m, 0, 1, &[], Deadline::none(), &mut stats).unwrap();
        let b = TupleSet::create(&m, 2, 3, &[], Deadline::none(), &mut stats).unwrap();
        // Require evt1 (t=2) before evt3.
        let rel = RelEval::Temporal {
            left_pattern: 1,
            kind: TempKind::Before,
            range_ns: None,
            right_pattern: 3,
        };
        let merged = TupleSet::merge(&a, &b, &m, &[&rel], Deadline::none(), &mut stats).unwrap();
        assert_eq!(merged.patterns, vec![0, 1, 2, 3]);
        assert_eq!(merged.tuples, vec![vec![0, 0, 0, 1]], "only t3=9 qualifies");
    }

    #[test]
    fn singleton_and_slots() {
        let ts = TupleSet::singleton(4, 3);
        assert_eq!(ts.patterns, vec![4]);
        assert_eq!(ts.tuples.len(), 3);
        assert_eq!(ts.slot(4), Some(0));
        assert_eq!(ts.slot(0), None);
    }
}
