//! Investigation sessions: prepared parameterized queries, snapshot
//! pinning, plan caching, `EXPLAIN`, and streaming cursors.
//!
//! The paper's workload is an *interactive* investigation: an analyst
//! iterates on near-identical queries — the same pattern with different
//! agent / time-window / attribute constants — against a live store. A
//! [`Session`] makes each iteration cheap:
//!
//! - [`Session::open`] binds the session to a [`SharedStore`] and owns the
//!   **snapshot-pinning policy**: by default every statement pins the
//!   freshest published snapshot (each query sees the newest acknowledged
//!   data); [`Session::pin`] switches to repeatable reads — every
//!   statement sees one fixed snapshot until [`Session::refresh`] moves
//!   the pin forward or [`Session::unpin`] returns to per-statement mode.
//! - [`Session::prepare`] parses, analyzes, and validates a query **once**
//!   (through the session's plan cache, so preparing the same text twice
//!   is a cache hit), returning a [`Prepared`] statement whose `$name`
//!   placeholders are bound per execution.
//! - [`Prepared::bind`] + [`Bound::execute`] produce a [`Cursor`]:
//!   pull-based row delivery with `limit`/`offset`, no forced full
//!   materialization on the consumer side.
//! - [`Bound::explain`] runs the statement with instrumentation and
//!   reports the chosen access paths, partition/zone-map pruning,
//!   estimated-vs-actual rows, and the plan cache's hit/miss counters.
//!
//! # Examples
//!
//! ```
//! use aiql_engine::{Params, Session};
//! use aiql_model::{AgentId, Dataset, Entity, EntityKind, Event, OpType, Timestamp};
//! use aiql_storage::{EventStore, SharedStore, StoreConfig};
//!
//! let mut data = Dataset::new();
//! let a = AgentId(1);
//! let bash = data.add_entity(Entity::process(1.into(), a, "bash", 7));
//! let hist = data.add_entity(Entity::file(2.into(), a, "/home/u/.bash_history"));
//! data.add_event(Event::new(
//!     1.into(), a, bash, OpType::Read, hist, EntityKind::File,
//!     Timestamp::from_ymd(2017, 1, 1).unwrap(),
//! ));
//! let store = SharedStore::new(EventStore::ingest(&data, StoreConfig::partitioned()).unwrap());
//!
//! let session = Session::open(&store);
//! let stmt = session
//!     .prepare("agentid = $agent proc p read file f[$fname] return p, f")
//!     .unwrap();
//! let cursor = stmt
//!     .bind(Params::new().set("agent", 1).set("fname", "%.bash_history"))
//!     .unwrap()
//!     .execute()
//!     .unwrap();
//! let rows: Vec<_> = cursor.collect();
//! assert_eq!(rows.len(), 1);
//! ```

use crate::error::EngineError;
use crate::pattern::{EngineStats, ScanRecord, StoreRef};
use crate::result::EngineResult;
use crate::scoring;
use crate::{Engine, EngineConfig, Outcome, PlanSlot};
use aiql_core::{CacheStats, ParamSpec, PlanCache, PreparedQuery, QueryContext, QueryKind};
use aiql_rdb::{Row, ScanProfile};
use aiql_storage::{SharedStore, StoreSnapshot, StoreStamp};
use aiql_telemetry::trace::SpanNode;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Parameter values for [`Prepared::bind`], built fluently:
/// `Params::new().set("agent", 9).set("pname", "%cmd.exe")`.
pub use aiql_core::ParamValues as Params;

/// Default number of compiled statements a session's plan cache retains.
pub const SESSION_PLAN_CACHE_CAPACITY: usize = 256;

/// Shared state behind a session and every statement prepared on it.
struct SessionCore {
    store: SharedStore,
    config: EngineConfig,
    /// `Some` while the session is pinned to one snapshot (repeatable
    /// reads); `None` in per-statement mode.
    pinned: Mutex<Option<StoreSnapshot>>,
    cache: Mutex<PlanCache>,
    /// Statement-level physical plans, keyed by normalized source like the
    /// plan cache, so re-preparing (or `Session::run`ning) identical text
    /// reuses the plan a previous `Prepared` already filled. Coarsely
    /// bounded: cleared wholesale when it outgrows the plan cache.
    plans: Mutex<std::collections::HashMap<String, Arc<PlanSlot>>>,
    /// Per-statement wall-clock budget in nanoseconds (0 = none). Shared by
    /// all clones; overlays (never widens) the engine config's own budget.
    timeout_nanos: AtomicU64,
}

impl SessionCore {
    /// The snapshot the next statement runs against under the current
    /// pinning policy.
    fn snapshot(&self) -> StoreSnapshot {
        self.pinned
            .lock()
            .expect("session pin lock poisoned")
            .clone()
            .unwrap_or_else(|| self.store.read())
    }

    /// The engine configuration for the next execution: the session config
    /// with the statement timeout folded into the budget (tightest wins).
    fn exec_config(&self) -> EngineConfig {
        let mut config = self.config;
        let nanos = self.timeout_nanos.load(Ordering::Relaxed);
        if nanos > 0 {
            let t = Duration::from_nanos(nanos);
            config.budget = Some(config.budget.map_or(t, |b| b.min(t)));
        }
        config
    }
}

/// An investigation session over a [`SharedStore`].
///
/// Cheap to clone (all clones share the plan cache and pinning policy) and
/// safe to use from multiple threads; see the [module docs](self) for the
/// lifecycle.
#[derive(Clone)]
pub struct Session {
    core: Arc<SessionCore>,
}

impl Session {
    /// Opens a session with AIQL's default engine configuration
    /// (relationship scheduling + partition parallelism) and per-statement
    /// snapshot pinning.
    pub fn open(store: &SharedStore) -> Session {
        Session::with_config(store, EngineConfig::aiql())
    }

    /// Opens a session with an explicit engine configuration.
    pub fn with_config(store: &SharedStore, config: EngineConfig) -> Session {
        Session {
            core: Arc::new(SessionCore {
                store: store.clone(),
                config,
                pinned: Mutex::new(None),
                cache: Mutex::new(PlanCache::new(SESSION_PLAN_CACHE_CAPACITY)),
                plans: Mutex::new(std::collections::HashMap::new()),
                timeout_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Caps every statement on this session (and its clones) at `timeout`
    /// of wall-clock time, builder style. Execution is cancelled at the
    /// engine's cooperative checkpoints — between partition scans, join
    /// steps, and cursor-page assembly — and surfaces as
    /// [`EngineError::Timeout`]. The cap composes with an engine-config
    /// budget: the tighter of the two wins.
    pub fn with_timeout(self, timeout: Duration) -> Session {
        self.set_statement_timeout(Some(timeout));
        self
    }

    /// Sets or clears the per-statement timeout (see
    /// [`Session::with_timeout`]).
    pub fn set_statement_timeout(&self, timeout: Option<Duration>) {
        let nanos = timeout.map_or(0, |t| t.as_nanos().min(u64::MAX as u128) as u64);
        self.core.timeout_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The per-statement timeout currently in force, if any.
    pub fn statement_timeout(&self) -> Option<Duration> {
        match self.core.timeout_nanos.load(Ordering::Relaxed) {
            0 => None,
            n => Some(Duration::from_nanos(n)),
        }
    }

    /// Pins the session to the currently published snapshot: every
    /// following statement sees exactly this store version (repeatable
    /// reads for an investigation in progress), regardless of concurrent
    /// ingestion. Returns the pinned stamp.
    pub fn pin(&self) -> StoreStamp {
        let snap = self.core.store.read();
        let stamp = snap.stamp();
        *self.core.pinned.lock().expect("session pin lock poisoned") = Some(snap);
        stamp
    }

    /// Moves a pinned session forward to the newest published snapshot
    /// (and pins it). Equivalent to [`Session::pin`]; named for intent.
    pub fn refresh(&self) -> StoreStamp {
        self.pin()
    }

    /// Returns to per-statement pinning: each statement reads the newest
    /// published snapshot at execution time.
    pub fn unpin(&self) {
        *self.core.pinned.lock().expect("session pin lock poisoned") = None;
    }

    /// The stamp the next statement will observe: the pinned snapshot's,
    /// or the currently published one in per-statement mode.
    pub fn stamp(&self) -> StoreStamp {
        self.core.snapshot().stamp()
    }

    /// Whether the session is pinned to a fixed snapshot.
    pub fn is_pinned(&self) -> bool {
        self.core
            .pinned
            .lock()
            .expect("session pin lock poisoned")
            .is_some()
    }

    /// Compiles `source` into a reusable [`Prepared`] statement: lex,
    /// parse, and structural analysis happen here — once — and never again
    /// for any number of bind/execute iterations. Queries may declare
    /// `$name` placeholders (see [`aiql_core::prepare`]). The session's
    /// plan cache makes re-preparing identical (whitespace-normalized)
    /// text a lookup.
    pub fn prepare(&self, source: &str) -> Result<Prepared, EngineError> {
        // Collect the compile-phase tree (lex/parse/analyze — empty on a
        // plan-cache hit). `finish` runs before `?` so a compile error
        // never leaves an armed collector on this thread.
        aiql_telemetry::trace::begin("prepare");
        let compiled = self
            .core
            .cache
            .lock()
            .expect("plan cache lock poisoned")
            .get_or_compile(source);
        let trace = aiql_telemetry::trace::finish();
        let stmt = compiled?;
        if let Some(t) = &trace {
            crate::metrics::metrics().prepare_micros.record(t.micros);
        }
        // Share the statement's physical-plan slot across re-prepares of
        // the same (normalized) text, so cache hits skip planning too.
        let plan = {
            let mut plans = self.core.plans.lock().expect("plan map poisoned");
            if plans.len() >= 2 * SESSION_PLAN_CACHE_CAPACITY {
                plans.clear();
            }
            plans
                .entry(aiql_core::normalize_source(source))
                .or_default()
                .clone()
        };
        Ok(Prepared {
            stmt,
            core: self.core.clone(),
            plan,
            trace: trace.map(Arc::new),
        })
    }

    /// One-shot convenience: prepare (through the plan cache), execute
    /// with no parameters, and materialize the full result.
    pub fn run(&self, source: &str) -> Result<EngineResult, EngineError> {
        Ok(self.prepare(source)?.execute()?.into_result())
    }

    /// Plan-cache counters (hits, misses, entries, capacity).
    pub fn cache_stats(&self) -> CacheStats {
        self.core
            .cache
            .lock()
            .expect("plan cache lock poisoned")
            .stats()
    }
}

/// A compiled statement bound to a [`Session`].
///
/// Created by [`Session::prepare`]; executing it never re-parses the
/// source. Clone freely — clones share the compiled plan.
///
/// # Examples
///
/// ```
/// use aiql_engine::Session;
/// use aiql_storage::{EventStore, SharedStore, StoreConfig};
///
/// let store = SharedStore::new(EventStore::empty(StoreConfig::partitioned()).unwrap());
/// let session = Session::open(&store);
/// let stmt = session.prepare("proc p read file f return p, f").unwrap();
/// assert!(stmt.params().is_empty());
/// assert_eq!(stmt.execute().unwrap().count(), 0);
/// ```
#[derive(Clone)]
pub struct Prepared {
    stmt: Arc<PreparedQuery>,
    core: Arc<SessionCore>,
    /// Statement-level physical-plan cache: the first execution plans
    /// (under `ScoreModel::DataStatistics` that means measuring real
    /// selectivities against the store), every later execution — any
    /// binding — reuses the cached ordering. Clones share the slot.
    plan: Arc<PlanSlot>,
    /// Compile-phase trace collected by [`Session::prepare`].
    trace: Option<Arc<SpanNode>>,
}

impl Prepared {
    /// The original source text.
    pub fn source(&self) -> &str {
        self.stmt.source()
    }

    /// The compile-phase trace of the `prepare` call that produced this
    /// statement: a `prepare` root with `lex`/`parse`/`analyze` children
    /// on a compile, and no children on a plan-cache hit.
    pub fn trace(&self) -> Option<&SpanNode> {
        self.trace.as_deref()
    }

    /// The declared `$name` parameters, in first-occurrence order.
    pub fn params(&self) -> &[ParamSpec] {
        self.stmt.params()
    }

    /// Whether this statement's physical plan has been cached by an
    /// earlier execution — its own, or that of another `Prepared` for the
    /// same (normalized) source on this session.
    pub fn is_planned(&self) -> bool {
        self.plan.is_planned()
    }

    /// Binds values to the placeholders, producing an executable
    /// statement. Binding is semantically identical to substituting each
    /// value's literal spelling into the source text — `$x` bound to
    /// `"%cmd%"` behaves as a LIKE, to `"cmd.exe"` as an equality — but
    /// skips the lexer and parser entirely.
    pub fn bind(&self, params: Params) -> Result<Bound, EngineError> {
        let ctx = self.stmt.bind(&params)?;
        Ok(Bound {
            ctx: Arc::new(ctx),
            core: self.core.clone(),
            plan: self.plan.clone(),
            source: self.stmt.source().to_string(),
            params: params.render(),
            offset: 0,
            limit: None,
        })
    }

    /// Executes a parameterless statement. Statements with placeholders
    /// must go through [`Prepared::bind`].
    pub fn execute(&self) -> Result<Cursor, EngineError> {
        self.bind(Params::new())?.execute()
    }

    /// Explains a parameterless statement (see [`Bound::explain`]).
    pub fn explain(&self) -> Result<Explain, EngineError> {
        self.bind(Params::new())?.explain()
    }
}

/// A prepared statement with all parameters bound, ready to execute.
///
/// `limit`/`offset` shape the cursor without materializing intermediate
/// copies.
pub struct Bound {
    ctx: Arc<QueryContext>,
    core: Arc<SessionCore>,
    plan: Arc<PlanSlot>,
    /// Source text and rendered parameters, kept for the slow-query log.
    source: String,
    params: String,
    offset: usize,
    limit: Option<usize>,
}

impl Bound {
    /// Yields at most `n` rows from the cursor.
    pub fn limit(mut self, n: usize) -> Bound {
        self.limit = Some(n);
        self
    }

    /// Skips the first `n` rows before yielding any.
    pub fn offset(mut self, n: usize) -> Bound {
        self.offset = n;
        self
    }

    /// The analyzed context this binding will execute.
    pub fn ctx(&self) -> &QueryContext {
        &self.ctx
    }

    /// Executes under the session's pinning policy and returns a pull-based
    /// [`Cursor`] over the result rows.
    ///
    /// The execution is traced: the cursor carries an `execute`-rooted
    /// phase tree ([`Cursor::trace`]) whose children are the scheduler's
    /// `plan`, one `scan:<pattern>` per data query, the `join` steps, and
    /// the final `score` (result assembly). Statements at or above the
    /// [`aiql_telemetry::slowlog`] threshold are recorded there with their
    /// source, bound parameters, and scan profile.
    pub fn execute(self) -> Result<Cursor, EngineError> {
        let snapshot = self.core.snapshot();
        let stamp = snapshot.stamp();
        aiql_telemetry::trace::begin("execute");
        let ran = Engine::with_config(&snapshot, self.core.exec_config())
            .with_plan_slot(&self.plan)
            .run_ctx(&self.ctx);
        let trace = aiql_telemetry::trace::finish();
        let outcome = ran?;
        let m = crate::metrics::metrics();
        let elapsed_micros = outcome.elapsed.as_micros() as u64;
        m.execute_micros.record(elapsed_micros);
        if let Some(t) = &trace {
            crate::metrics::record_phases(m, t);
        }
        let slowlog = aiql_telemetry::slowlog::global();
        if slowlog.is_slow(elapsed_micros) {
            m.slow_queries.inc();
            slowlog.record(aiql_telemetry::slowlog::SlowQueryEntry {
                source: self.source.clone(),
                params: self.params.clone(),
                elapsed_micros,
                rows: outcome.result.rows.len() as u64,
                profile: render_profile(&outcome.stats),
            });
        }
        Ok(Cursor::new(outcome, stamp, self.offset, self.limit, trace))
    }

    /// Executes with instrumentation and reports the physical plan that
    /// actually ran: access paths per scan, partition and zone-map pruning
    /// counts, estimated-vs-actual rows per pattern, and the session plan
    /// cache's counters. (`EXPLAIN ANALYZE` semantics: the statement runs
    /// to completion against the session's current snapshot.)
    pub fn explain(&self) -> Result<Explain, EngineError> {
        let snapshot = self.core.snapshot();
        let stamp = snapshot.stamp();
        let store_ref = StoreRef::Single(&snapshot);
        let estimates = scoring::estimate_rows(store_ref, &self.ctx);
        let outcome = Engine::with_config(&snapshot, self.core.exec_config())
            .with_plan_slot(&self.plan)
            .run_ctx(&self.ctx)?;
        let patterns = (0..self.ctx.patterns.len())
            .map(|idx| {
                let actual = outcome
                    .stats
                    .matches
                    .iter()
                    .rev()
                    .find(|(p, _)| *p == idx)
                    .map(|(_, n)| *n as u64);
                PatternPlan {
                    pattern: idx,
                    estimated_rows: estimates.get(idx).copied().unwrap_or(0),
                    actual_rows: actual,
                    scans: outcome
                        .stats
                        .scans
                        .iter()
                        .filter(|s| s.pattern == idx)
                        .cloned()
                        .collect(),
                }
            })
            .collect();
        Ok(Explain {
            kind: self.ctx.kind,
            stamp,
            elapsed: outcome.elapsed,
            rows_returned: outcome.result.rows.len(),
            data_queries: outcome.stats.data_queries,
            rows_scanned: outcome.stats.rows_scanned,
            patterns,
            cache: self
                .core
                .cache
                .lock()
                .expect("plan cache lock poisoned")
                .stats(),
        })
    }
}

/// Pull-based row delivery for one statement execution.
///
/// The cursor owns the snapshot-consistent result of its execution and
/// hands rows out incrementally (each `next` *moves* a row out — nothing
/// is cloned, and a consumer that stops early never touches the tail).
/// `limit`/`offset` set on the [`Bound`] are applied during iteration.
///
/// # Examples
///
/// ```
/// use aiql_engine::Session;
/// use aiql_storage::{EventStore, SharedStore, StoreConfig};
///
/// let store = SharedStore::new(EventStore::empty(StoreConfig::partitioned()).unwrap());
/// let session = Session::open(&store);
/// let mut cursor = session
///     .prepare("proc p read file f return p, f")
///     .unwrap()
///     .execute()
///     .unwrap();
/// assert_eq!(cursor.columns(), ["p", "f"]);
/// assert!(cursor.next().is_none());
/// ```
pub struct Cursor {
    columns: Vec<String>,
    rows: std::vec::IntoIter<Row>,
    remaining: usize,
    stats: EngineStats,
    stamp: StoreStamp,
    elapsed: Duration,
    trace: Option<SpanNode>,
}

impl Cursor {
    fn new(
        outcome: Outcome,
        stamp: StoreStamp,
        offset: usize,
        limit: Option<usize>,
        trace: Option<SpanNode>,
    ) -> Cursor {
        let Outcome {
            result,
            stats,
            elapsed,
        } = outcome;
        let total = result.rows.len();
        let remaining = limit
            .unwrap_or(usize::MAX)
            .min(total.saturating_sub(offset));
        let mut rows = result.rows.into_iter();
        if offset > 0 {
            // `advance_by` is unstable; nth(offset-1) drops the skipped
            // prefix without cloning anything.
            let _ = rows.nth(offset - 1);
        }
        Cursor {
            columns: result.columns,
            rows,
            remaining,
            stats,
            stamp,
            elapsed,
            trace,
        }
    }

    /// Result column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Pulls up to `n` rows in one batch (fewer at the end of the result).
    pub fn fetch(&mut self, n: usize) -> Vec<Row> {
        crate::metrics::metrics().cursor_fetches.inc();
        let mut out = Vec::with_capacity(n.min(self.remaining));
        for _ in 0..n {
            match self.next() {
                Some(r) => out.push(r),
                None => break,
            }
        }
        out
    }

    /// Rows not yet pulled (after `limit`/`offset`).
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The store version the whole execution observed.
    pub fn stamp(&self) -> StoreStamp {
        self.stamp
    }

    /// Execution statistics of the run that produced this cursor.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Wall-clock execution time of the run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The execution's phase tree: an `execute` root over the scheduler's
    /// `plan`, per-pattern `scan:<name>` phases, `join` steps, and the
    /// final `score` (see [`aiql_telemetry::trace`]).
    pub fn trace(&self) -> Option<&SpanNode> {
        self.trace.as_ref()
    }

    /// Drains the remaining rows into a materialized [`EngineResult`].
    pub fn into_result(mut self) -> EngineResult {
        let mut rows = Vec::with_capacity(self.remaining);
        rows.extend(self.by_ref());
        EngineResult {
            columns: self.columns,
            rows,
        }
    }
}

impl Iterator for Cursor {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        crate::metrics::metrics().cursor_rows.inc();
        self.rows.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Renders a one-line scan profile for the slow-query log: per scan, the
/// access paths taken and the scanned→matched row funnel.
fn render_profile(stats: &EngineStats) -> String {
    stats
        .scans
        .iter()
        .map(|s| {
            let paths = s.profile.paths().join("+");
            let scatter = match &s.scatter {
                Some(sc) if sc.colocated => " · shard-local".to_string(),
                Some(sc) => format!(
                    " · shards {}/{} w{}",
                    sc.shards_scanned, sc.shards_total, sc.workers
                ),
                None => String::new(),
            };
            format!(
                "p{} {}({}): {} · rows {}→{}{}",
                s.pattern,
                s.table,
                s.target.name(),
                if paths.is_empty() { "no-scan" } else { &paths },
                s.profile.rows_scanned,
                s.profile.rows_matched,
                scatter,
            )
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// The physical plan of one pattern's data query, with estimation error
/// made visible.
#[derive(Debug, Clone)]
pub struct PatternPlan {
    /// Pattern index in query order.
    pub pattern: usize,
    /// Estimated match rows, from the statistical scorer's store stats.
    pub estimated_rows: u64,
    /// Rows the pattern actually matched (`None` if the scheduler pruned
    /// the pattern away before it executed, e.g. after an empty partner).
    pub actual_rows: Option<u64>,
    /// Every storage scan the pattern issued, in execution order.
    pub scans: Vec<ScanRecord>,
}

/// The result of [`Bound::explain`]: what physically ran and what it cost.
#[derive(Debug, Clone)]
pub struct Explain {
    pub kind: QueryKind,
    /// Snapshot the explained execution observed.
    pub stamp: StoreStamp,
    pub elapsed: Duration,
    pub rows_returned: usize,
    pub data_queries: u32,
    pub rows_scanned: u64,
    pub patterns: Vec<PatternPlan>,
    /// Session plan-cache counters at explain time.
    pub cache: CacheStats,
}

impl Explain {
    /// Every access path that ran, deduplicated (e.g. `["index-probe",
    /// "columnar"]`).
    pub fn access_paths(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for p in &self.patterns {
            for s in &p.scans {
                for path in s.profile.paths() {
                    if !out.contains(&path) {
                        out.push(path);
                    }
                }
            }
        }
        out
    }

    /// Summed profile across all scans.
    pub fn total_profile(&self) -> ScanProfile {
        let mut total = ScanProfile::default();
        for p in &self.patterns {
            for s in &p.scans {
                total.merge(&s.profile);
            }
        }
        total
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXPLAIN {:?} query @ snapshot {{epoch {}, {} events}}: \
             {} rows in {:.3} ms ({} data queries, {} rows scanned)",
            self.kind,
            self.stamp.epoch,
            self.stamp.events,
            self.rows_returned,
            self.elapsed.as_secs_f64() * 1e3,
            self.data_queries,
            self.rows_scanned,
        )?;
        for p in &self.patterns {
            let actual = match p.actual_rows {
                Some(n) => n.to_string(),
                None => "not executed".to_string(),
            };
            writeln!(
                f,
                "  pattern {}: estimated {} rows, actual {}",
                p.pattern, p.estimated_rows, actual
            )?;
            for s in &p.scans {
                let prof = &s.profile;
                let paths = prof.paths().join("+");
                write!(
                    f,
                    "    {} ({}): {} · partitions {}/{}",
                    s.table,
                    s.target.name(),
                    if paths.is_empty() { "no scan" } else { &paths },
                    prof.partitions_scanned,
                    prof.partitions_total,
                )?;
                if prof.blocks_total > 0 {
                    write!(
                        f,
                        " · blocks {}/{} zone-pruned",
                        prof.blocks_pruned, prof.blocks_total
                    )?;
                }
                writeln!(
                    f,
                    " · rows {} scanned -> {} matched",
                    prof.rows_scanned, prof.rows_matched
                )?;
                if let Some(sc) = &s.scatter {
                    write!(
                        f,
                        "      scatter: shards {}/{} · workers {}",
                        sc.shards_scanned, sc.shards_total, sc.workers,
                    )?;
                    if sc.colocated {
                        write!(f, " · shard-local")?;
                    } else {
                        let order = sc
                            .scatter_order
                            .iter()
                            .zip(&sc.rows_per_shard)
                            .map(|(s, r)| format!("s{s}:{r}"))
                            .collect::<Vec<_>>()
                            .join(" ");
                        write!(
                            f,
                            " · order [{order}] · queue wait {} µs",
                            sc.queue_wait_micros
                        )?;
                    }
                    writeln!(f)?;
                }
            }
        }
        writeln!(
            f,
            "  plan cache: {} hits / {} misses ({:.0}% hit rate, {}/{} entries)",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries,
            self.cache.capacity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ScanTarget;
    use aiql_model::{AgentId, Dataset, Entity, EntityKind, Event, OpType, Timestamp};
    use aiql_storage::{EventStore, StoreConfig};

    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        let t0 = Timestamp::from_ymd(2017, 1, 1).unwrap().0;
        let s = 1_000_000_000i64;
        for agent in 1..=2u32 {
            let a = AgentId(agent);
            let base = agent as u64 * 100;
            let p = d.add_entity(Entity::process(
                (base + 1).into(),
                a,
                format!("tool{agent}.exe"),
                10,
            ));
            for i in 0..6u64 {
                let f = d.add_entity(Entity::file(
                    (base + 10 + i).into(),
                    a,
                    format!("/data/{agent}/{i}"),
                ));
                d.add_event(
                    Event::new(
                        (base + 50 + i).into(),
                        a,
                        p,
                        if i % 2 == 0 {
                            OpType::Write
                        } else {
                            OpType::Read
                        },
                        f,
                        EntityKind::File,
                        Timestamp(
                            t0 + (i as i64 % 2) * aiql_rdb::partition::NANOS_PER_DAY + i as i64 * s,
                        ),
                    )
                    .with_amount(1000 * i as i64),
                );
            }
        }
        d
    }

    fn shared(config: StoreConfig) -> SharedStore {
        SharedStore::new(EventStore::ingest(&dataset(), config).unwrap())
    }

    const TEMPLATE: &str =
        r#"(at $day) agentid = $agent proc p[$pname] write file f return p, f sort by f"#;

    #[test]
    fn bind_execute_equals_textual_substitution() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let stmt = session.prepare(TEMPLATE).unwrap();
        assert_eq!(stmt.params().len(), 3);
        let got = stmt
            .bind(
                Params::new()
                    .set("day", "01/01/2017")
                    .set("agent", 1)
                    .set("pname", "%tool1%"),
            )
            .unwrap()
            .execute()
            .unwrap()
            .into_result();
        let oracle = Engine::new(&store.read())
            .run(
                r#"(at "01/01/2017") agentid = 1 proc p["%tool1%"] write file f
                   return p, f sort by f"#,
            )
            .unwrap();
        assert_eq!(got, oracle);
        assert!(!got.rows.is_empty());
    }

    #[test]
    fn cursor_streams_with_limit_and_offset() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let stmt = session
            .prepare("proc p read || write file f return p, f sort by f")
            .unwrap();
        let all = stmt.execute().unwrap().into_result();
        assert!(all.rows.len() >= 6);

        let mut cursor = stmt
            .bind(Params::new())
            .unwrap()
            .offset(2)
            .limit(3)
            .execute()
            .unwrap();
        assert_eq!(cursor.columns(), ["p", "f"]);
        assert_eq!(cursor.remaining(), 3);
        let first = cursor.next().unwrap();
        assert_eq!(first, all.rows[2]);
        let batch = cursor.fetch(10);
        assert_eq!(batch, all.rows[3..5].to_vec());
        assert!(cursor.next().is_none());

        // Offset past the end yields nothing.
        let empty: Vec<_> = stmt
            .bind(Params::new())
            .unwrap()
            .offset(10_000)
            .execute()
            .unwrap()
            .collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn pin_refresh_and_per_statement_policies() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let stmt = session
            .prepare("agentid = 1 proc p read || write file f return count p")
            .unwrap();
        let count = |c: Cursor| c.into_result().rows[0][0].as_int().unwrap();

        let before = count(stmt.execute().unwrap());
        let pinned_stamp = session.pin();
        assert!(session.is_pinned());

        // A concurrent append publishes a new snapshot...
        {
            let mut w = store.write();
            let t = Timestamp::from_ymd(2017, 1, 1).unwrap();
            w.append_event(&Event::new(
                9_999.into(),
                AgentId(1),
                101.into(),
                OpType::Read,
                110.into(),
                EntityKind::File,
                Timestamp(t.0 + 3600 * 1_000_000_000),
            ))
            .unwrap();
        }
        // ...but the pinned session still sees the old version.
        let c = stmt.execute().unwrap();
        assert_eq!(c.stamp(), pinned_stamp);
        assert_eq!(count(c), before);

        // Refresh moves the pin to the newest snapshot.
        let refreshed = session.refresh();
        assert!(refreshed > pinned_stamp);
        assert_eq!(count(stmt.execute().unwrap()), before + 1);

        // Unpin: per-statement mode follows the published store again.
        session.unpin();
        assert!(!session.is_pinned());
        assert_eq!(count(stmt.execute().unwrap()), before + 1);
    }

    #[test]
    fn explain_reports_columnar_and_index_probe_paths() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        // Unconstrained entities: the events scan runs on the columnar
        // projection (time-window kernels), entity rows resolve through
        // id-index probes.
        let explain = session
            .prepare(r#"(at "01/01/2017") proc p write file f return p, f"#)
            .unwrap()
            .explain()
            .unwrap();
        let paths = explain.access_paths();
        assert!(
            paths.contains(&"columnar"),
            "events scan columnar: {paths:?}"
        );
        assert!(
            paths.contains(&"index-probe"),
            "entity id probes: {paths:?}"
        );
        assert!(explain.rows_returned > 0);
        // Day pruning: only day-1 partitions of the events table scanned.
        let ev = explain.patterns[0]
            .scans
            .iter()
            .find(|s| s.target == ScanTarget::Events)
            .unwrap();
        assert!(ev.profile.partitions_scanned < ev.profile.partitions_total);
        assert_eq!(
            explain.patterns[0].actual_rows,
            Some(ev.profile.rows_matched)
        );
        let rendered = explain.to_string();
        assert!(rendered.contains("columnar"), "{rendered}");
        assert!(rendered.contains("plan cache"), "{rendered}");
    }

    #[test]
    fn explain_reports_seq_scan_on_the_row_store() {
        let store = shared(StoreConfig::partitioned().with_columnar(false));
        let session = Session::open(&store);
        let explain = session
            .prepare(r#"(at "01/01/2017") proc p write file f as e[amount >= 0] return p, f"#)
            .unwrap()
            .explain()
            .unwrap();
        assert!(
            explain.access_paths().contains(&"seq-scan"),
            "row store without usable index: {:?}",
            explain.access_paths()
        );
        assert!(explain.to_string().contains("seq-scan"));
    }

    #[test]
    fn estimated_vs_actual_rows_are_populated() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let explain = session
            .prepare(r#"(at "01/01/2017") agentid = 1 proc p write file f return p, f"#)
            .unwrap()
            .explain()
            .unwrap();
        let p = &explain.patterns[0];
        assert!(p.estimated_rows > 0, "non-empty window estimates > 0");
        assert!(p.actual_rows.is_some());
    }

    #[test]
    fn reprepared_statements_share_the_physical_plan() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::with_config(&store, crate::EngineConfig::aiql_statistical());
        let src = "proc p read || write file f return count p";
        let first = session.prepare(src).unwrap();
        assert!(!first.is_planned(), "nothing has executed yet");
        first.execute().unwrap().count();
        assert!(first.is_planned(), "first execution fills the slot");
        // A re-prepare of the same text — e.g. `session.run` in a loop —
        // picks up the already-filled slot instead of replanning.
        let again = session.prepare(src).unwrap();
        assert!(again.is_planned(), "cache hit reuses the plan");
        // Different text gets its own, empty slot.
        assert!(!session
            .prepare("proc p read file f return count p")
            .unwrap()
            .is_planned());
    }

    #[test]
    fn session_plan_cache_counts_and_run_convenience() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let src = "proc p read file f return count p";
        session.prepare(src).unwrap();
        session.prepare(src).unwrap();
        let r = session.run(src).unwrap();
        assert_eq!(r.columns, vec!["count"]);
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn execution_traces_expose_the_phase_tree() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        // Force a real compile (unique source) so prepare has children.
        let src = r#"(at "01/01/2017") proc p write file f as tracedevt return p, f"#;
        let stmt = session.prepare(src).unwrap();
        let ptrace = stmt.trace().expect("prepare is traced");
        assert_eq!(ptrace.name, "prepare");
        for phase in ["lex", "parse", "analyze"] {
            assert!(ptrace.child(phase).is_some(), "missing {phase}");
        }
        // A cache hit still yields a tree, just without compile phases.
        let hit = session.prepare(src).unwrap();
        assert!(hit.trace().unwrap().children.is_empty());

        let cursor = stmt.execute().unwrap();
        let etrace = cursor.trace().expect("execute is traced");
        assert_eq!(etrace.name, "execute");
        assert!(etrace.child("plan").is_some());
        assert!(!etrace.children_with_prefix("scan:").is_empty());
        assert!(etrace.child("score").is_some());
    }

    #[test]
    fn slow_queries_land_in_the_global_log() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let log = aiql_telemetry::slowlog::global();
        let saved = log.threshold_micros();
        log.set_threshold_micros(0); // everything is slow
        let src = r#"agentid = $agent proc p write file f as slowevt return p, f"#;
        session
            .prepare(src)
            .unwrap()
            .bind(Params::new().set("agent", 1))
            .unwrap()
            .execute()
            .unwrap()
            .count();
        log.set_threshold_micros(saved);
        let entry = log
            .entries()
            .into_iter()
            .rev()
            .find(|e| e.source.contains("slowevt"))
            .expect("slow execution recorded");
        assert!(entry.params.contains("$agent = 1"), "{}", entry.params);
        assert!(entry.profile.contains("rows"), "{}", entry.profile);
    }

    #[test]
    fn statement_timeout_cancels_instead_of_completing() {
        let store = shared(StoreConfig::partitioned());
        // A 1 ns budget is expired by the time the first cooperative
        // checkpoint (entering the pattern scan) runs, so any query that
        // touches data must cancel rather than complete.
        let session = Session::open(&store).with_timeout(Duration::from_nanos(1));
        assert_eq!(session.statement_timeout(), Some(Duration::from_nanos(1)));
        let r = session.run("proc p read || write file f return p, f");
        assert!(matches!(r, Err(EngineError::Timeout)), "got {r:?}");

        // Clearing the timeout lets the same source run to completion —
        // clones share the setting.
        let clone = session.clone();
        clone.set_statement_timeout(None);
        assert_eq!(session.statement_timeout(), None);
        assert!(session
            .run("proc p read || write file f return p, f")
            .is_ok());
    }

    #[test]
    fn binding_errors_surface_as_compile_errors() {
        let store = shared(StoreConfig::partitioned());
        let session = Session::open(&store);
        let stmt = session.prepare(TEMPLATE).unwrap();
        let err = match stmt.bind(Params::new().set("agent", 1)) {
            Err(e) => e,
            Ok(_) => panic!("missing parameter must fail"),
        };
        assert!(matches!(err, EngineError::Compile(_)), "{err}");
        // Executing a parameterized statement without binding fails too.
        assert!(stmt.execute().is_err());
    }
}
