//! Persistent scatter-gather execution pool (in-process MPP).
//!
//! The paper's evaluation leans on parallel execution (Sec. 6.3 benchmarks
//! against Greenplum precisely because MPP is what makes interactive
//! investigation possible at scale). This module is the engine's half of
//! that story: a **process-wide pool** of worker threads fed by a task
//! queue, plus a scoped `scatter` primitive the pattern executor uses to
//! fan one pattern's shard scans out across workers and gather the
//! borrowed-row results.
//!
//! Why a persistent pool instead of the old per-query
//! `std::thread::scope` spawn: thread creation is microseconds-to-
//! milliseconds of latency charged to *every* parallel query, and scoped
//! threads give no global admission control — two concurrent 8-way
//! queries would spawn 16 threads on a 4-core box. The pool amortizes
//! spawn cost across the process lifetime and caps total execution
//! threads at [`MAX_WORKERS`].
//!
//! # Scatter contract
//!
//! `scatter` runs `tasks` with up to `width` threads (the coordinator
//! participates, so `width - 1` pool workers are enlisted) and returns
//! every task's result **in task order**. Guarantees:
//!
//! - **Scoped borrows.** Tasks may borrow from the caller's stack:
//!   `scatter` does not return until every task has run, so the borrows
//!   outlive every access. (Internally the closures are lifetime-erased
//!   onto the 'static pool queue; the blocking gather is what makes that
//!   sound — see the safety comment in `scatter`.)
//! - **Panic isolation.** A panicking task does not abort the process and
//!   does not kill the pool worker running it: the panic is caught,
//!   sibling tasks still run to completion, and the panic payload comes
//!   back as [`EngineError::Worker`].
//! - **No deadlock under load.** The coordinator drains the same task
//!   list the pool workers do, so a scatter makes progress even when
//!   every pool worker is busy with other queries' tasks — including the
//!   nested case of a scatter issued from a pool worker.

use crate::error::EngineError;
use crate::metrics::metrics;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on pool worker threads (the coordinator thread is extra).
pub const MAX_WORKERS: usize = 16;

/// Per-query execution policy: whether event scans scatter across the
/// pool, and how wide. Carried by `EngineConfig` and threaded down to the
/// pattern executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Scatter partitioned event scans across shards.
    pub parallel: bool,
    /// Scatter width in threads, coordinator included. `0` = auto-size to
    /// `available_parallelism`.
    pub workers: usize,
}

impl ExecPolicy {
    /// Single-threaded execution (scans run inline on the coordinator).
    pub fn sequential() -> ExecPolicy {
        ExecPolicy {
            parallel: false,
            workers: 1,
        }
    }

    /// The effective scatter width: 1 when sequential, the configured
    /// width (capped at [`MAX_WORKERS`]) otherwise, machine-sized if 0.
    pub fn width(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        let w = if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        w.clamp(1, MAX_WORKERS)
    }
}

/// How one scattered scan actually executed — the engine-level complement
/// of `aiql_rdb::ScanProfile`, surfaced per scan record by `EXPLAIN`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScatterProfile {
    /// Shards the store's layout defines for this scan.
    pub shards_total: u32,
    /// Shards that held admitted partitions and were actually scanned.
    pub shards_scanned: u32,
    /// Scatter width used (1 = the shard-local / sequential fast path).
    pub workers: u32,
    /// Shard ids in dispatch order — largest estimated shard first, so
    /// stragglers start earliest.
    pub scatter_order: Vec<u32>,
    /// Rows matched per scanned shard, parallel to `scatter_order`.
    pub rows_per_shard: Vec<u64>,
    /// Worst task wait between scatter submission and a thread picking
    /// the task up, in microseconds (0 on the shard-local path).
    pub queue_wait_micros: u64,
    /// True when pruning co-located the whole scan on one shard and it
    /// ran inline without touching the pool (`query_local` vs
    /// `query_gather` in the MPP segment layer).
    pub colocated: bool,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    workers: usize,
}

/// The process-wide execution pool. One instance per process ([`pool`]);
/// workers are spawned lazily up to the first scatter's width and live for
/// the process lifetime.
pub struct ExecPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// The process-wide pool instance.
pub fn pool() -> &'static ExecPool {
    static POOL: OnceLock<ExecPool> = OnceLock::new();
    POOL.get_or_init(|| ExecPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        available: Condvar::new(),
    })
}

impl ExecPool {
    /// Number of worker threads currently alive.
    pub fn worker_count(&self) -> usize {
        self.state.lock().unwrap().workers
    }

    /// Grows the pool to at least `want` workers (capped at
    /// [`MAX_WORKERS`]); never shrinks.
    fn ensure_workers(&self, want: usize) {
        let want = want.clamp(1, MAX_WORKERS);
        let mut st = self.state.lock().unwrap();
        while st.workers < want {
            st.workers += 1;
            let id = st.workers;
            std::thread::Builder::new()
                .name(format!("aiql-exec-{id}"))
                .spawn(|| pool().worker_loop())
                .expect("spawn execution pool worker");
        }
        metrics().pool_workers.set(st.workers as i64);
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if let Some(j) = st.queue.pop_front() {
                        break j;
                    }
                    st = self.available.wait(st).unwrap();
                }
            };
            job();
        }
    }

    fn submit(&self, job: Job) {
        self.state.lock().unwrap().queue.push_back(job);
        self.available.notify_one();
    }
}

/// The claiming state one scatter shares between the coordinator and its
/// pool runners. Held in an `Arc` so a runner that fires *after* the
/// scatter completed (its work already claimed by faster threads) still
/// has valid memory to observe the exhausted counter in.
struct ScatterShared {
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Tasks not yet completed; the thread that drops this to 0 wakes the
    /// coordinator and must touch the shared state no further.
    remaining: AtomicUsize,
    done: Mutex<bool>,
    cv: Condvar,
    /// Worst observed submission→start wait, µs.
    max_wait_micros: AtomicU64,
    started: Instant,
    /// The lifetime-erased tasks. Every slot is claimed exactly once (the
    /// `next` counter), so by completion every `Option` is `None` and a
    /// late runner dropping the `Arc` frees no borrowed data.
    slots: Vec<Mutex<Option<Job>>>,
}

impl ScatterShared {
    /// Claims and runs tasks until the counter is exhausted or this call
    /// completes the scatter. Runs on pool workers and the coordinator.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.slots.len() {
                return;
            }
            let wait = self.started.elapsed().as_micros() as u64;
            self.max_wait_micros.fetch_max(wait, Ordering::Relaxed);
            metrics().pool_queue_wait_micros.record(wait);
            if let Some(task) = self.slots[i].lock().unwrap().take() {
                task();
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task done: set the flag under the lock, wake the
                // coordinator, and exit without touching shared state
                // again — the coordinator may free its borrows (and drop
                // its Arc) as soon as it reacquires the mutex.
                *self.done.lock().unwrap() = true;
                self.cv.notify_all();
                return;
            }
        }
    }
}

/// Result of one scatter.
#[derive(Debug)]
pub(crate) struct ScatterRun<T> {
    /// Per-task results, in task order.
    pub results: Vec<T>,
    /// Worst task wait between submission and start, µs.
    pub queue_wait_micros: u64,
}

/// Runs `tasks` with up to `width` threads (coordinator included) and
/// returns their results in task order. See the module docs for the
/// scoped-borrow, panic, and progress guarantees.
pub(crate) fn scatter<'env, T, F>(tasks: Vec<F>, width: usize) -> Result<ScatterRun<T>, EngineError>
where
    F: FnOnce() -> T + Send + 'env,
    T: Send + 'env,
{
    let n = tasks.len();
    let mut results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    // Shard-local / sequential fast path: no pool round-trip.
    if width <= 1 || n <= 1 {
        for (i, f) in tasks.into_iter().enumerate() {
            let r = catch_unwind(AssertUnwindSafe(f));
            *results[i].lock().unwrap() = Some(r);
        }
        return gather(results, 0);
    }

    metrics().pool_tasks.add(n as u64);
    let slots: Vec<Mutex<Option<Job>>> = tasks
        .into_iter()
        .zip(results.iter_mut())
        .map(|(f, slot)| {
            // One task: run the caller's closure panic-caught and park the
            // outcome in its result slot.
            let slot: &Mutex<Option<std::thread::Result<T>>> = slot;
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(f));
                *slot.lock().unwrap() = Some(r);
            });
            // SAFETY: the closure borrows `results` (and whatever `f`
            // captured from the caller's stack) for 'env, not 'static. The
            // erasure is sound because every access to those borrows
            // happens before the scatter returns: the coordinator blocks
            // on `done` until `remaining` hits 0, which requires every
            // slot to have been claimed and executed. A pool runner that
            // wakes later observes only the exhausted `next` counter and
            // empty slots inside the `Arc` it co-owns — never the erased
            // borrows.
            let job: Job = unsafe { std::mem::transmute(job) };
            Mutex::new(Some(job))
        })
        .collect();

    let shared = Arc::new(ScatterShared {
        next: AtomicUsize::new(0),
        remaining: AtomicUsize::new(n),
        done: Mutex::new(false),
        cv: Condvar::new(),
        max_wait_micros: AtomicU64::new(0),
        started: Instant::now(),
        slots,
    });

    let p = pool();
    let runners = (width - 1).min(n - 1);
    p.ensure_workers(runners);
    for _ in 0..runners {
        let s = Arc::clone(&shared);
        p.submit(Box::new(move || s.drain()));
    }
    // The coordinator is the `width`th thread: it drains the same task
    // list, so the scatter progresses even if no pool worker is free.
    shared.drain();
    let mut done = shared.done.lock().unwrap();
    while !*done {
        done = shared.cv.wait(done).unwrap();
    }
    drop(done);
    let wait = shared.max_wait_micros.load(Ordering::Relaxed);
    drop(shared);
    gather(results, wait)
}

fn gather<T>(
    results: Vec<Mutex<Option<std::thread::Result<T>>>>,
    queue_wait_micros: u64,
) -> Result<ScatterRun<T>, EngineError> {
    let mut out = Vec::with_capacity(results.len());
    for slot in results {
        match slot.into_inner().unwrap() {
            Some(Ok(v)) => out.push(v),
            Some(Err(payload)) => return Err(EngineError::Worker(panic_message(&*payload))),
            None => return Err(EngineError::Worker("task was never executed".into())),
        }
    }
    Ok(ScatterRun {
        results: out,
        queue_wait_micros,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_task_order() {
        for width in [1, 2, 4, 8] {
            let data: Vec<u64> = (0..40).collect();
            let tasks: Vec<_> = data.iter().map(|&x| move || x * 2).collect();
            let run = scatter(tasks, width).unwrap();
            assert_eq!(run.results, (0..40).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_borrows_from_caller_stack() {
        let rows: Vec<String> = (0..16).map(|i| format!("row{i}")).collect();
        let tasks: Vec<_> = rows
            .chunks(4)
            .map(|chunk| move || chunk.iter().map(|s| s.len()).sum::<usize>())
            .collect();
        let run = scatter(tasks, 4).unwrap();
        assert_eq!(
            run.results.iter().sum::<usize>(),
            rows.iter().map(|s| s.len()).sum()
        );
    }

    #[test]
    fn worker_panic_surfaces_as_engine_error_not_abort() {
        for width in [1, 4] {
            let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0u32..8)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("shard {i} exploded");
                        }
                        i
                    }) as Box<dyn FnOnce() -> u32 + Send>
                })
                .collect();
            let err = scatter(tasks, width).unwrap_err();
            match err {
                EngineError::Worker(msg) => assert!(msg.contains("shard 5 exploded"), "{msg}"),
                other => panic!("expected Worker error, got {other:?}"),
            }
        }
        // The pool survives: a follow-up scatter still works.
        let ok = scatter((0..4).map(|i| move || i).collect::<Vec<_>>(), 4).unwrap();
        assert_eq!(ok.results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_scatter_cannot_deadlock() {
        // Outer tasks each scatter again; coordinator participation means
        // this completes even when the pool is saturated.
        let tasks: Vec<_> = (0..4)
            .map(|i| {
                move || {
                    let inner: Vec<_> = (0..4).map(|j| move || i * 10 + j).collect();
                    scatter(inner, 4).unwrap().results.iter().sum::<i32>()
                }
            })
            .collect();
        let run = scatter(tasks, 4).unwrap();
        assert_eq!(run.results.len(), 4);
    }

    #[test]
    fn pool_is_bounded_and_persistent() {
        let _ = scatter((0..32).map(|i| move || i).collect::<Vec<_>>(), 64);
        assert!(pool().worker_count() <= MAX_WORKERS);
    }
}
