//! Anomaly query execution: sliding time windows, per-group aggregation,
//! history states, and moving averages (paper Sec. 4.3 / 5.1).
//!
//! The engine executes the (single) event pattern once, sorts the matches by
//! event time, then slides a window of `window_ns` by `step_ns`. In each
//! window it groups the covered matches by the `group by` fields, computes
//! the aggregates, appends them to each group's *history*, and evaluates the
//! `having` filter — which may reference history states (`freq[1]`) and
//! moving averages (`SMA`/`CMA`/`WMA`/`EWMA`). Groups whose history is
//! shallower than a referenced offset are skipped for that window (no alert
//! before enough history exists); a tracked group absent from a window
//! records zero aggregates, so spikes are measured against true quiet
//! periods.

use crate::error::EngineError;
use crate::exec::ExecPolicy;
use crate::layout::{resolve_field, START_COL};
use crate::pattern::{execute_pattern, Deadline, EngineStats, StoreRef};
use crate::result::{moving_average, Accum, EngineResult};
use crate::synth::ExtraCstr;
use aiql_core::ast::{AggFunc, CmpOp as AstCmp};
use aiql_core::{ArithCtx, HavingCtx, QueryContext, RetExprCtx};
use aiql_rdb::Value;
use std::collections::BTreeMap;

/// Executes an anomaly query.
pub fn run_anomaly(
    store: StoreRef<'_>,
    ctx: &QueryContext,
    exec: ExecPolicy,
    deadline: Deadline,
    stats: &mut EngineStats,
) -> Result<EngineResult, EngineError> {
    let slide = ctx.slide.expect("anomaly context has a slide spec");
    if ctx.patterns.len() != 1 {
        return Err(EngineError::Unsupported(
            "anomaly queries use a single event pattern".into(),
        ));
    }
    let p = &ctx.patterns[0];

    // Resolve return items to match-row positions.
    enum Item {
        Field(usize),
        Agg {
            func: AggFunc,
            distinct: bool,
            col: usize,
        },
    }
    let items: Vec<(Item, String)> = ctx
        .ret
        .items
        .iter()
        .map(|it| {
            let item = match &it.expr {
                RetExprCtx::Field(f) => Item::Field(resolve_field(f, p.object_kind)?),
                RetExprCtx::Agg {
                    func,
                    distinct,
                    arg,
                } => Item::Agg {
                    func: *func,
                    distinct: *distinct,
                    col: resolve_field(arg, p.object_kind)?,
                },
            };
            Ok((item, it.name.clone()))
        })
        .collect::<Result<Vec<_>, EngineError>>()?;

    // Execute the pattern and sort by time.
    let mut rows = execute_pattern(store, p, &ExtraCstr::default(), exec, deadline, stats)?;
    rows.sort_by_key(|r| r[START_COL].as_int().unwrap_or(0));
    let times: Vec<i64> = rows
        .iter()
        .map(|r| r[START_COL].as_int().unwrap_or(0))
        .collect();

    // Window span: the global window when present, else the data's extent.
    let (span_lo, span_hi) = match p.window {
        Some(w) => w,
        None => match (times.first(), times.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi + 1),
            _ => {
                return Ok(EngineResult {
                    columns: items.into_iter().map(|(_, n)| n).collect(),
                    rows: Vec::new(),
                })
            }
        },
    };

    // Per-group state: history of per-item numeric values (group fields
    // recorded once).
    struct Group {
        fields: Vec<Value>,
        history: Vec<Vec<f64>>,
    }
    let mut groups: BTreeMap<Vec<Value>, Group> = BTreeMap::new();
    let mut out: Vec<Vec<Value>> = Vec::new();

    let mut window_start = span_lo;
    // Guard against degenerate zero-length spans.
    let max_windows = 1 + ((span_hi - span_lo).max(0) / slide.step_ns.max(1));
    let mut wi = 0i64;
    while window_start < span_hi && wi <= max_windows {
        deadline.check()?;
        wi += 1;
        let window_end = window_start + slide.window_ns;
        // Matches inside [window_start, window_end) via binary search.
        let lo_idx = times.partition_point(|&t| t < window_start);
        let hi_idx = times.partition_point(|&t| t < window_end);

        // Aggregate the window per group.
        let mut window_accums: BTreeMap<Vec<Value>, Vec<Accum>> = BTreeMap::new();
        let agg_count = items
            .iter()
            .filter(|(i, _)| matches!(i, Item::Agg { .. }))
            .count();
        for r in &rows[lo_idx..hi_idx] {
            let key: Vec<Value> = ctx
                .group_by
                .iter()
                .map(|&gi| match &items[gi].0 {
                    Item::Field(col) => r[*col].clone(),
                    Item::Agg { .. } => Value::Null,
                })
                .collect();
            let accums = window_accums
                .entry(key.clone())
                .or_insert_with(|| vec![Accum::default(); agg_count]);
            let mut slot = 0;
            for (item, _) in &items {
                if let Item::Agg { distinct, col, .. } = item {
                    accums[slot].update(&r[*col], *distinct);
                    slot += 1;
                }
            }
            // Register the group (fields snapshot) on first sight.
            groups.entry(key.clone()).or_insert_with(|| Group {
                fields: items
                    .iter()
                    .map(|(i, _)| match i {
                        Item::Field(col) => r[*col].clone(),
                        Item::Agg { .. } => Value::Null,
                    })
                    .collect(),
                history: Vec::new(),
            });
        }

        // Update every tracked group (absent ⇒ zero aggregates) and test.
        for (key, group) in groups.iter_mut() {
            let accums = window_accums.remove(key);
            let defaults = vec![Accum::default(); agg_count];
            let accums = accums.unwrap_or(defaults);
            // Current values per item (group fields + aggregates).
            let mut slot = 0;
            let values: Vec<Value> = items
                .iter()
                .enumerate()
                .map(|(k, (item, _))| match item {
                    Item::Field(_) => group.fields[k].clone(),
                    Item::Agg { func, distinct, .. } => {
                        let v = accums[slot].result(*func, *distinct);
                        slot += 1;
                        v
                    }
                })
                .collect();
            let numeric: Vec<f64> = values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect();
            group.history.push(numeric);

            let passes = match &ctx.having {
                Some(h) => eval_having(h, &values, &group.history),
                None => true,
            };
            if passes {
                out.push(values);
            }
        }

        window_start += slide.step_ns;
    }

    crate::result::finish(ctx, items.into_iter().map(|(_, n)| n).collect(), out)
}

/// Evaluates `having` with history access. `history` includes the current
/// window as its last entry. Returns false when a referenced history depth
/// is unavailable.
fn eval_having(h: &HavingCtx, values: &[Value], history: &[Vec<f64>]) -> bool {
    match h {
        HavingCtx::Cmp { op, left, right } => {
            let (Some(a), Some(b)) = (
                eval_arith(left, values, history),
                eval_arith(right, values, history),
            ) else {
                return false;
            };
            if a.is_nan() || b.is_nan() {
                return false;
            }
            match op {
                AstCmp::Eq => a == b,
                AstCmp::Ne => a != b,
                AstCmp::Lt => a < b,
                AstCmp::Le => a <= b,
                AstCmp::Gt => a > b,
                AstCmp::Ge => a >= b,
            }
        }
        HavingCtx::And(x, y) => eval_having(x, values, history) && eval_having(y, values, history),
        HavingCtx::Or(x, y) => eval_having(x, values, history) || eval_having(y, values, history),
        HavingCtx::Not(x) => !eval_having(x, values, history),
    }
}

fn eval_arith(a: &ArithCtx, values: &[Value], history: &[Vec<f64>]) -> Option<f64> {
    Some(match a {
        ArithCtx::Num(n) => *n,
        ArithCtx::Item(i) => values[*i].as_f64().unwrap_or(f64::NAN),
        ArithCtx::Hist { item, back } => {
            // history[len-1] is the current window.
            if history.len() <= *back {
                return None;
            }
            history[history.len() - 1 - back][*item]
        }
        ArithCtx::MovAvg { kind, item, param } => {
            let series: Vec<f64> = history.iter().map(|w| w[*item]).collect();
            moving_average(*kind, &series, *param)
        }
        ArithCtx::Add(x, y) => eval_arith(x, values, history)? + eval_arith(y, values, history)?,
        ArithCtx::Sub(x, y) => eval_arith(x, values, history)? - eval_arith(y, values, history)?,
        ArithCtx::Mul(x, y) => eval_arith(x, values, history)? * eval_arith(y, values, history)?,
        ArithCtx::Div(x, y) => eval_arith(x, values, history)? / eval_arith(y, values, history)?,
        ArithCtx::Neg(x) => -eval_arith(x, values, history)?,
    })
}

// Integration-style tests live in `lib.rs` (they need a full store); the
// pure helpers are tested here.
#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::ast::MaKind;

    #[test]
    fn hist_requires_depth() {
        let h = HavingCtx::Cmp {
            op: AstCmp::Gt,
            left: ArithCtx::Item(0),
            right: ArithCtx::Hist { item: 0, back: 2 },
        };
        let values = vec![Value::Float(10.0)];
        // Only 2 windows recorded: back=2 needs 3.
        assert!(!eval_having(&h, &values, &[vec![1.0], vec![10.0]]));
        // 3 windows: compare 10 > 1.
        assert!(eval_having(
            &h,
            &values,
            &[vec![1.0], vec![5.0], vec![10.0]]
        ));
    }

    #[test]
    fn ewma_in_having() {
        // (x - EWMA(x)) / EWMA(x) > 0.5 with flat history then a spike.
        let h = HavingCtx::Cmp {
            op: AstCmp::Gt,
            left: ArithCtx::Div(
                Box::new(ArithCtx::Sub(
                    Box::new(ArithCtx::Item(0)),
                    Box::new(ArithCtx::MovAvg {
                        kind: MaKind::Ewma,
                        item: 0,
                        param: 0.9,
                    }),
                )),
                Box::new(ArithCtx::MovAvg {
                    kind: MaKind::Ewma,
                    item: 0,
                    param: 0.9,
                }),
            ),
            right: ArithCtx::Num(0.5),
        };
        let flat: Vec<Vec<f64>> = (0..5).map(|_| vec![10.0]).collect();
        assert!(!eval_having(&h, &[Value::Float(10.0)], &flat));
        let mut spiked = flat.clone();
        spiked.push(vec![100.0]);
        assert!(eval_having(&h, &[Value::Float(100.0)], &spiked));
    }
}
