//! Data-query scheduling (paper Sec. 5.2).
//!
//! Two schedulers are implemented:
//!
//! - [`fetch_and_filter`] — the straightforward baseline the paper compares
//!   against ("AIQL FF"): execute every data query independently, keep all
//!   results in memory, then use the relationships to filter.
//! - [`relationship_based`] — the paper's Algorithm 1: compute a pruning
//!   score per pattern (its constraint count), sort relationships by type
//!   (process/network events ahead of file events) and combined score, then
//!   walk the relationships executing the higher-scored pattern first and
//!   *constraining* the other side's data query with the observed results
//!   (IN-lists on equi-join attributes, narrowed time bounds for temporal
//!   relationships).

use crate::error::EngineError;
use crate::exec::ExecPolicy;
use crate::layout::{resolve_field, OBJ_OFF, START_COL, SUBJ_OFF};
use crate::pattern::{execute_pattern, Deadline, EngineStats, StoreRef};
use crate::synth::{ExtraCstr, Side};
use crate::tupleset::{Matches, RelEval, TupleSet};
use aiql_core::ast::{CmpOp as AstCmp, TempKind};
use aiql_core::{FieldRef, QueryContext, RelationCtx};
use aiql_model::EntityKind;
use aiql_rdb::Value;

/// Scheduler selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Relationship-based scheduling (Algorithm 1) — AIQL's optimization.
    #[default]
    Relationship,
    /// Fetch-and-filter — the in-memory baseline.
    FetchFilter,
}

/// Output of multievent scheduling: per-pattern matches plus the final
/// tuple set joining all patterns.
pub struct Joined {
    pub matches: Matches,
    pub tuples: TupleSet,
}

/// Runs the fetch-and-filter strategy.
pub fn fetch_and_filter(
    store: StoreRef<'_>,
    ctx: &QueryContext,
    exec: ExecPolicy,
    deadline: Deadline,
    stats: &mut EngineStats,
) -> Result<Joined, EngineError> {
    let n = ctx.patterns.len();
    let mut matches = Matches::new(n);
    for p in &ctx.patterns {
        let rows = execute_pattern(store, p, &ExtraCstr::default(), exec, deadline, stats)?;
        matches.per_pattern[p.idx] = Some(rows);
    }
    let rels: Vec<RelEval> = ctx
        .relations
        .iter()
        .map(|r| RelEval::build(r, ctx))
        .collect::<Result<_, _>>()?;

    // Fold patterns in query order, applying every relationship as soon as
    // both endpoints are present.
    let mut ts = TupleSet::singleton(0, matches.rows(0).len());
    for j in 1..n {
        let applicable: Vec<&RelEval> = rels
            .iter()
            .filter(|r| {
                let (l, rr) = r.endpoints();
                (l == j && rr < j) || (rr == j && l < j)
            })
            .collect();
        ts = ts.extend(&matches, j, &applicable, deadline, stats)?;
    }
    Ok(Joined {
        matches,
        tuples: ts,
    })
}

/// Relationship sort key (Algorithm 1, step 2): process/network-event
/// relationships ahead of file-event ones, then by descending combined
/// pruning score. Ties break in favour of attribute (equality)
/// relationships — they prune by hash join and constrained execution,
/// whereas temporal relationships only bound a time range.
fn rel_sort_key(rel: &RelationCtx, ctx: &QueryContext, scores: &[u32]) -> (u8, i64, u8) {
    let (l, r) = rel.endpoints();
    let file_class = |p: usize| ctx.patterns[p].object_kind == EntityKind::File;
    let class = u8::from(file_class(l) || file_class(r));
    let score = scores[l] as i64 + scores[r] as i64;
    let kind = match rel {
        RelationCtx::Attr { .. } => 0,
        RelationCtx::Temporal { .. } => 1,
    };
    (class, -score, kind)
}

/// Derives the extra constraints for executing `target`'s data query given
/// the already-known rows of `known` under relationship `rel` (Algorithm 1's
/// `S_j ←execute_{S_i} q_j`).
fn derive_extra(
    rel: &RelationCtx,
    ctx: &QueryContext,
    known: usize,
    known_rows: &[aiql_rdb::Row],
    target: usize,
) -> Result<ExtraCstr, EngineError> {
    let mut extra = ExtraCstr::default();
    if known_rows.is_empty() {
        // No results on the known side: the target query can still run, the
        // join will produce nothing. Constrain maximally with an empty IN.
        extra
            .in_lists
            .push((Side::Event, aiql_storage::schema::ev::ID, Vec::new()));
        return Ok(extra);
    }
    match rel {
        RelationCtx::Attr {
            left,
            op: AstCmp::Eq,
            right,
        } => {
            let (known_ref, target_ref): (&FieldRef, &FieldRef) = if left.pattern == known {
                (left, right)
            } else {
                (right, left)
            };
            debug_assert_eq!(target_ref.pattern, target);
            let known_col = resolve_field(known_ref, ctx.patterns[known].object_kind)?;
            let mut values: Vec<Value> = known_rows.iter().map(|r| r[known_col].clone()).collect();
            values.sort();
            values.dedup();
            // Map the target field onto its sub-scan.
            let tcol = resolve_field(target_ref, ctx.patterns[target].object_kind)?;
            let (side, local) = if tcol >= OBJ_OFF {
                (Side::Object, tcol - OBJ_OFF)
            } else if tcol >= SUBJ_OFF {
                (Side::Subject, tcol - SUBJ_OFF)
            } else {
                (Side::Event, tcol)
            };
            extra.in_lists.push((side, local, values));
        }
        RelationCtx::Attr { .. } => {
            // Non-equality attribute relationships do not constrain the scan;
            // they filter during the join.
        }
        RelationCtx::Temporal {
            left,
            kind,
            range_ns,
            right,
        } => {
            let times: Vec<i64> = known_rows
                .iter()
                .filter_map(|r| r[START_COL].as_int())
                .collect();
            let (min_t, max_t) = (
                times.iter().copied().min().unwrap_or(i64::MIN),
                times.iter().copied().max().unwrap_or(i64::MAX),
            );
            // Orient: does the known side come first (`before`) w.r.t. the
            // target?
            let known_is_left = *left == known;
            debug_assert!(if known_is_left {
                *right == target
            } else {
                *left == target
            });
            let target_after_known = match kind {
                TempKind::Before => known_is_left,
                TempKind::After => !known_is_left,
                TempKind::Within => {
                    let (_lo, hi) = range_ns.unwrap_or((0, 0));
                    extra.time_lo = Some(min_t - hi);
                    extra.time_hi = Some(max_t + hi);
                    return Ok(extra);
                }
            };
            if target_after_known {
                extra.time_lo = Some(match range_ns {
                    Some((lo, _)) => min_t + lo,
                    None => min_t,
                });
                if let Some((_, hi)) = range_ns {
                    extra.time_hi = Some(max_t + hi);
                }
            } else {
                extra.time_hi = Some(match range_ns {
                    Some((lo, _)) => max_t - lo,
                    None => max_t,
                });
                if let Some((_, hi)) = range_ns {
                    extra.time_lo = Some(min_t - hi);
                }
            }
        }
    }
    Ok(extra)
}

/// Runs Algorithm 1 with the paper's constraint-count pruning scores.
pub fn relationship_based(
    store: StoreRef<'_>,
    ctx: &QueryContext,
    exec: ExecPolicy,
    deadline: Deadline,
    stats: &mut EngineStats,
) -> Result<Joined, EngineError> {
    let scores: Vec<u32> = ctx.patterns.iter().map(|p| p.score).collect();
    relationship_based_scored(store, ctx, &scores, exec, deadline, stats)
}

/// Runs Algorithm 1: relationship-based scheduling with constrained
/// execution, under externally supplied pruning scores (see
/// [`crate::scoring`] for the available models).
pub fn relationship_based_scored(
    store: StoreRef<'_>,
    ctx: &QueryContext,
    scores: &[u32],
    exec: ExecPolicy,
    deadline: Deadline,
    stats: &mut EngineStats,
) -> Result<Joined, EngineError> {
    let n = ctx.patterns.len();
    let mut matches = Matches::new(n);

    // Step 1-2: sort relationships by class and combined pruning score.
    let mut order: Vec<usize> = (0..ctx.relations.len()).collect();
    order.sort_by_key(|&ri| rel_sort_key(&ctx.relations[ri], ctx, scores));
    let rels: Vec<RelEval> = ctx
        .relations
        .iter()
        .map(|r| RelEval::build(r, ctx))
        .collect::<Result<_, _>>()?;

    // M: pattern → tuple-set id; sets stored in an arena.
    let mut set_of: Vec<Option<usize>> = vec![None; n];
    let mut arena: Vec<Option<TupleSet>> = Vec::new();

    // Step 3: main loop over sorted relationships.
    for &ri in &order {
        deadline.check()?;
        let rel_ctx = &ctx.relations[ri];
        let rel = &rels[ri];
        let (i0, j0) = rel.endpoints();
        if i0 == j0 {
            continue;
        }
        match (matches.executed(i0), matches.executed(j0)) {
            (false, false) => {
                // Execute the higher-scoring pattern first, then constrain
                // the other side with its results.
                let (hi, lo) = if scores[i0] >= scores[j0] {
                    (i0, j0)
                } else {
                    (j0, i0)
                };
                let hi_rows = execute_pattern(
                    store,
                    &ctx.patterns[hi],
                    &ExtraCstr::default(),
                    exec,
                    deadline,
                    stats,
                )?;
                let extra = derive_extra(rel_ctx, ctx, hi, &hi_rows, lo)?;
                matches.per_pattern[hi] = Some(hi_rows);
                let lo_rows =
                    execute_pattern(store, &ctx.patterns[lo], &extra, exec, deadline, stats)?;
                matches.per_pattern[lo] = Some(lo_rows);
                let ts = TupleSet::create(&matches, i0, j0, &[rel], deadline, stats)?;
                let id = arena.len();
                arena.push(Some(ts));
                set_of[i0] = Some(id);
                set_of[j0] = Some(id);
            }
            (true, false) | (false, true) => {
                let (known, fresh) = if matches.executed(i0) {
                    (i0, j0)
                } else {
                    (j0, i0)
                };
                // Constrain the fresh query with the known side's *joined*
                // rows (those still present in the tuple set, when one
                // exists — a tighter bound than the raw matches).
                let extra = {
                    let known_rows: Vec<aiql_rdb::Row> = match set_of[known] {
                        Some(id) => {
                            let ts = arena[id].as_ref().expect("live set");
                            let slot = ts.slot(known).expect("pattern in its set");
                            let rows = matches.rows(known);
                            let mut seen = std::collections::HashSet::new();
                            ts.tuples
                                .iter()
                                .filter(|t| seen.insert(t[slot]))
                                .map(|t| rows[t[slot] as usize].clone())
                                .collect()
                        }
                        None => matches.rows(known).to_vec(),
                    };
                    derive_extra(rel_ctx, ctx, known, &known_rows, fresh)?
                };
                let fresh_rows =
                    execute_pattern(store, &ctx.patterns[fresh], &extra, exec, deadline, stats)?;
                matches.per_pattern[fresh] = Some(fresh_rows);
                match set_of[known] {
                    Some(id) => {
                        let ts = arena[id].take().expect("live set");
                        let ts2 = ts.extend(&matches, fresh, &[rel], deadline, stats)?;
                        arena[id] = Some(ts2);
                        set_of[fresh] = Some(id);
                    }
                    None => {
                        let ts = TupleSet::create(&matches, known, fresh, &[rel], deadline, stats)?;
                        let id = arena.len();
                        arena.push(Some(ts));
                        set_of[known] = Some(id);
                        set_of[fresh] = Some(id);
                    }
                }
            }
            (true, true) => {
                match (set_of[i0], set_of[j0]) {
                    (Some(a), Some(b)) if a == b => {
                        // Same set: filter in place.
                        arena[a].as_mut().expect("live set").filter(&matches, rel);
                    }
                    (Some(a), Some(b)) => {
                        // Different sets: merge and re-point all members.
                        let ta = arena[a].take().expect("live set");
                        let tb = arena[b].take().expect("live set");
                        let merged = TupleSet::merge(&ta, &tb, &matches, &[rel], deadline, stats)?;
                        let id = arena.len();
                        for p in &merged.patterns {
                            set_of[*p] = Some(id);
                        }
                        arena.push(Some(merged));
                    }
                    (a, b) => {
                        // A pattern executed without a set (leftover path) —
                        // wrap in singletons then merge.
                        let ga = ensure_set(&mut arena, &mut set_of, &matches, i0, a);
                        let gb = ensure_set(&mut arena, &mut set_of, &matches, j0, b);
                        if ga == gb {
                            arena[ga].as_mut().expect("live set").filter(&matches, rel);
                        } else {
                            let ta = arena[ga].take().expect("live set");
                            let tb = arena[gb].take().expect("live set");
                            let merged =
                                TupleSet::merge(&ta, &tb, &matches, &[rel], deadline, stats)?;
                            let id = arena.len();
                            for p in &merged.patterns {
                                set_of[*p] = Some(id);
                            }
                            arena.push(Some(merged));
                        }
                    }
                }
            }
        }
    }

    // Step 4: leftover patterns (no relationships) execute unconstrained.
    for p in &ctx.patterns {
        if !matches.executed(p.idx) {
            let rows = execute_pattern(store, p, &ExtraCstr::default(), exec, deadline, stats)?;
            matches.per_pattern[p.idx] = Some(rows);
        }
        if set_of[p.idx].is_none() {
            let ts = TupleSet::singleton(p.idx, matches.rows(p.idx).len());
            let id = arena.len();
            arena.push(Some(ts));
            set_of[p.idx] = Some(id);
        }
    }

    // Step 5: merge all remaining distinct sets (cartesian).
    let mut live: Vec<usize> = arena
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.as_ref().map(|_| i))
        .collect();
    // Only keep sets actually referenced by patterns.
    live.retain(|&id| set_of.contains(&Some(id)));
    while live.len() > 1 {
        deadline.check()?;
        let b = live.pop().expect("len > 1");
        let a = live[0];
        let ta = arena[a].take().expect("live set");
        let tb = arena[b].take().expect("live set");
        let merged = TupleSet::merge(&ta, &tb, &matches, &[], deadline, stats)?;
        let id = arena.len();
        for p in &merged.patterns {
            set_of[*p] = Some(id);
        }
        arena.push(Some(merged));
        live[0] = id;
    }

    let final_id = live.pop().expect("at least one pattern");
    let tuples = arena[final_id].take().expect("live set");
    Ok(Joined { matches, tuples })
}

fn ensure_set(
    arena: &mut Vec<Option<TupleSet>>,
    set_of: &mut [Option<usize>],
    matches: &Matches,
    pattern: usize,
    existing: Option<usize>,
) -> usize {
    match existing {
        Some(id) => id,
        None => {
            let ts = TupleSet::singleton(pattern, matches.rows(pattern).len());
            let id = arena.len();
            arena.push(Some(ts));
            set_of[pattern] = Some(id);
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;
    use aiql_model::{AgentId, Dataset, Entity, Event, OpType, Timestamp};
    use aiql_storage::{EventStore, StoreConfig};

    /// cmd→osql start; sqlservr→dump write; sbblv reads dump; sbblv→ip write.
    /// Plus noise: 50 background file reads.
    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        let a = AgentId(1);
        let t0 = Timestamp::from_ymd(2017, 1, 1).unwrap().0;
        let cmd = d.add_entity(Entity::process(1.into(), a, "cmd.exe", 1));
        let osql = d.add_entity(Entity::process(2.into(), a, "osql.exe", 2));
        let sql = d.add_entity(Entity::process(3.into(), a, "sqlservr.exe", 3));
        let sbblv = d.add_entity(Entity::process(4.into(), a, "sbblv.exe", 4));
        let dump = d.add_entity(Entity::file(5.into(), a, "c:\\backup1.dmp"));
        let ip = d.add_entity(Entity::netconn(
            6.into(),
            a,
            "10.0.0.5",
            999,
            "10.10.1.129",
            443,
        ));
        let mut eid = 1u64;
        let mut ev = |d: &mut Dataset, s, op, o, k, t: i64| {
            let id = eid;
            eid += 1;
            d.add_event(Event::new(id.into(), a, s, op, o, k, Timestamp(t0 + t)));
        };
        ev(
            &mut d,
            cmd,
            OpType::Start,
            osql,
            aiql_model::EntityKind::Process,
            1_000_000_000,
        );
        ev(
            &mut d,
            sql,
            OpType::Write,
            dump,
            aiql_model::EntityKind::File,
            2_000_000_000,
        );
        ev(
            &mut d,
            sbblv,
            OpType::Read,
            dump,
            aiql_model::EntityKind::File,
            3_000_000_000,
        );
        ev(
            &mut d,
            sbblv,
            OpType::Write,
            ip,
            aiql_model::EntityKind::NetConn,
            4_000_000_000,
        );
        // Background noise.
        for i in 0..50u64 {
            let f = d.add_entity(Entity::file((100 + i).into(), a, format!("/tmp/noise{i}")));
            ev(
                &mut d,
                sbblv,
                OpType::Read,
                f,
                aiql_model::EntityKind::File,
                10_000_000_000 + i as i64,
            );
        }
        d
    }

    const QUERY7: &str = r#"
        (at "01/01/2017")
        proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
        proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
        proc p4["%sbblv.exe"] read file f1 as evt3
        proc p4 read || write ip i1[dstip = "10.10.1.129"] as evt4
        with evt1 before evt2, evt2 before evt3, evt3 before evt4
        return distinct p1, p2, p3, f1, p4, i1
    "#;

    fn joined(sched: Scheduler) -> (Joined, EngineStats) {
        let store = EventStore::ingest(&dataset(), StoreConfig::partitioned()).unwrap();
        let ctx = compile(QUERY7).unwrap();
        let mut stats = EngineStats::default();
        let j = match sched {
            Scheduler::Relationship => relationship_based(
                StoreRef::Single(&store),
                &ctx,
                ExecPolicy::sequential(),
                Deadline::none(),
                &mut stats,
            ),
            Scheduler::FetchFilter => fetch_and_filter(
                StoreRef::Single(&store),
                &ctx,
                ExecPolicy::sequential(),
                Deadline::none(),
                &mut stats,
            ),
        }
        .unwrap();
        (j, stats)
    }

    #[test]
    fn both_schedulers_find_the_attack_chain() {
        for sched in [Scheduler::Relationship, Scheduler::FetchFilter] {
            let (j, _) = joined(sched);
            assert_eq!(
                j.tuples.tuples.len(),
                1,
                "{sched:?} finds exactly the chain"
            );
            assert_eq!(j.tuples.patterns.len(), 4);
        }
    }

    #[test]
    fn relationship_scheduling_does_less_join_work() {
        let (_, rs) = joined(Scheduler::Relationship);
        let (_, ff) = joined(Scheduler::FetchFilter);
        // The constrained execution narrows pattern 2/3 result sets (the
        // unselective `p4 read file f1` pattern), so the relationship
        // scheduler's total matched rows must be smaller.
        let total = |s: &EngineStats| s.matches.iter().map(|(_, n)| *n).sum::<usize>();
        assert!(
            total(&rs) <= total(&ff),
            "relationship {} vs fetch-filter {}",
            total(&rs),
            total(&ff)
        );
    }

    #[test]
    fn patterns_without_relations_cartesian_merge() {
        let store = EventStore::ingest(&dataset(), StoreConfig::partitioned()).unwrap();
        let ctx = compile(
            r#"
            proc pa["%cmd.exe"] start proc pb as e1
            proc pc["%sqlservr.exe"] write file fd as e2
            return pa, pc
            "#,
        )
        .unwrap();
        let mut stats = EngineStats::default();
        let j = relationship_based(
            StoreRef::Single(&store),
            &ctx,
            ExecPolicy::sequential(),
            Deadline::none(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(j.tuples.tuples.len(), 1, "1 x 1 cartesian");
        assert_eq!(j.tuples.patterns.len(), 2);
    }

    #[test]
    fn empty_pattern_empties_the_join() {
        let store = EventStore::ingest(&dataset(), StoreConfig::partitioned()).unwrap();
        let ctx = compile(
            r#"
            proc p1["%cmd.exe"] start proc p2 as e1
            proc p3["%nonexistent%"] write file f as e2
            with e1 before e2
            return p1, p3
            "#,
        )
        .unwrap();
        for sched in [Scheduler::Relationship, Scheduler::FetchFilter] {
            let mut stats = EngineStats::default();
            let j = match sched {
                Scheduler::Relationship => relationship_based(
                    StoreRef::Single(&store),
                    &ctx,
                    ExecPolicy::sequential(),
                    Deadline::none(),
                    &mut stats,
                ),
                Scheduler::FetchFilter => fetch_and_filter(
                    StoreRef::Single(&store),
                    &ctx,
                    ExecPolicy::sequential(),
                    Deadline::none(),
                    &mut stats,
                ),
            }
            .unwrap();
            assert!(j.tuples.tuples.is_empty(), "{sched:?}");
        }
    }

    #[test]
    fn rel_sort_prefers_process_network_over_file() {
        let ctx = compile(QUERY7).unwrap();
        // Relation 2 (evt3 before evt4) touches the network pattern (idx 3)
        // and a file pattern; relation 0 (evt1 before evt2) touches a
        // process pattern and a file pattern... all involve files except
        // none. Verify at least that keys are computed and orderable.
        let scores: Vec<u32> = ctx.patterns.iter().map(|p| p.score).collect();
        let keys: Vec<_> = ctx
            .relations
            .iter()
            .map(|r| rel_sort_key(r, &ctx, &scores))
            .collect();
        assert_eq!(keys.len(), ctx.relations.len());
        // evt1 (process-event) + evt2 (file-event) → class 1.
        assert_eq!(keys[0].0, 1);
    }
}
