//! The flattened match-row layout and field resolution.
//!
//! Executing one event pattern produces *match rows*: the event row joined
//! with its subject and object entity rows, flattened into a single
//! `Vec<Value>`:
//!
//! ```text
//! [ event (11 cols) | subject process (7 cols) | object entity (7 cols) ]
//! ```
//!
//! All three entity tables are 7 columns wide, so the offsets are fixed and
//! field references resolve to plain positions.

use aiql_core::{AiqlError, FieldRef, FieldTarget};
use aiql_model::EntityKind;
use aiql_rdb::Row;
use aiql_storage::schema;

/// Offset of the event columns.
pub const EV_OFF: usize = 0;
/// Offset of the subject (process) columns.
pub const SUBJ_OFF: usize = schema::ev::WIDTH;
/// Offset of the object entity columns.
pub const OBJ_OFF: usize = SUBJ_OFF + schema::proc::WIDTH;
/// Total width of a match row.
pub const MATCH_WIDTH: usize = OBJ_OFF + 7;

/// Position of the event start time in a match row.
pub const START_COL: usize = EV_OFF + schema::ev::START;

/// Resolves a field reference to a match-row position, given the pattern's
/// object entity kind.
pub fn resolve_field(f: &FieldRef, object_kind: EntityKind) -> Result<usize, AiqlError> {
    let (off, schema_ref): (usize, &aiql_rdb::Schema) = match f.target {
        FieldTarget::Event => (EV_OFF, event_schema()),
        FieldTarget::Subject => (SUBJ_OFF, processes_schema()),
        FieldTarget::Object => (
            OBJ_OFF,
            match object_kind {
                EntityKind::Process => processes_schema(),
                EntityKind::File => files_schema(),
                EntityKind::NetConn => netconns_schema(),
            },
        ),
    };
    let col = schema::column_for_attr(&f.attr);
    schema_ref
        .position(col)
        .map(|p| off + p)
        .ok_or_else(|| AiqlError::new(format!("unresolvable attribute `{}`", f.attr)))
}

/// Builds a flattened match row.
pub fn flatten(event: &Row, subject: &Row, object: &Row) -> Row {
    let mut row = Vec::with_capacity(MATCH_WIDTH);
    row.extend_from_slice(event);
    row.extend_from_slice(subject);
    row.extend_from_slice(object);
    row
}

// Cached schemas (built once per process).
macro_rules! cached_schema {
    ($name:ident, $builder:path) => {
        fn $name() -> &'static aiql_rdb::Schema {
            use std::sync::OnceLock;
            static CELL: OnceLock<aiql_rdb::Schema> = OnceLock::new();
            CELL.get_or_init($builder)
        }
    };
}

cached_schema!(event_schema, schema::events_schema);
cached_schema!(processes_schema, schema::processes_schema);
cached_schema!(files_schema, schema::files_schema);
cached_schema!(netconns_schema, schema::netconns_schema);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_offsets() {
        assert_eq!(SUBJ_OFF, 11);
        assert_eq!(OBJ_OFF, 18);
        assert_eq!(MATCH_WIDTH, 25);
        assert_eq!(START_COL, schema::ev::START);
    }

    #[test]
    fn field_resolution() {
        let f = FieldRef {
            pattern: 0,
            target: FieldTarget::Subject,
            attr: "exe_name".into(),
        };
        assert_eq!(
            resolve_field(&f, EntityKind::File).unwrap(),
            SUBJ_OFF + schema::proc::EXE_NAME
        );

        let f = FieldRef {
            pattern: 0,
            target: FieldTarget::Object,
            attr: "name".into(),
        };
        assert_eq!(
            resolve_field(&f, EntityKind::File).unwrap(),
            OBJ_OFF + schema::file::NAME
        );

        let f = FieldRef {
            pattern: 0,
            target: FieldTarget::Object,
            attr: "dst_ip".into(),
        };
        assert_eq!(
            resolve_field(&f, EntityKind::NetConn).unwrap(),
            OBJ_OFF + schema::net::DST_IP
        );

        let f = FieldRef {
            pattern: 0,
            target: FieldTarget::Event,
            attr: "amount".into(),
        };
        assert_eq!(
            resolve_field(&f, EntityKind::File).unwrap(),
            schema::ev::AMOUNT
        );

        // `group` maps to the `grp` column.
        let f = FieldRef {
            pattern: 0,
            target: FieldTarget::Object,
            attr: "group".into(),
        };
        assert_eq!(
            resolve_field(&f, EntityKind::File).unwrap(),
            OBJ_OFF + schema::file::GRP
        );

        let f = FieldRef {
            pattern: 0,
            target: FieldTarget::Object,
            attr: "name".into(),
        };
        assert!(resolve_field(&f, EntityKind::NetConn).is_err());
    }
}
