//! Result assembly: projection, aggregation, `having`, `sort by`, `top`,
//! `distinct`, and `count` over joined tuples.

use crate::error::EngineError;
use crate::layout::resolve_field;
use crate::pattern::EngineStats;
use crate::schedule::Joined;
use aiql_core::ast::{AggFunc, CmpOp as AstCmp, MaKind};
use aiql_core::{ArithCtx, HavingCtx, QueryContext, RetExprCtx};
use aiql_rdb::Value;
use std::collections::HashMap;

/// The final result of an AIQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl std::fmt::Display for EngineResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for r in &self.rows {
            let cells: Vec<String> = r.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Evaluates resolved arithmetic without history (multievent `having`).
pub fn eval_arith_simple(a: &ArithCtx, items: &[Value]) -> f64 {
    match a {
        ArithCtx::Num(n) => *n,
        ArithCtx::Item(i) => items[*i].as_f64().unwrap_or(f64::NAN),
        // History/moving averages are rejected for non-anomaly queries by
        // the analyzer; NaN keeps eval total.
        ArithCtx::Hist { .. } | ArithCtx::MovAvg { .. } => f64::NAN,
        ArithCtx::Add(x, y) => eval_arith_simple(x, items) + eval_arith_simple(y, items),
        ArithCtx::Sub(x, y) => eval_arith_simple(x, items) - eval_arith_simple(y, items),
        ArithCtx::Mul(x, y) => eval_arith_simple(x, items) * eval_arith_simple(y, items),
        ArithCtx::Div(x, y) => eval_arith_simple(x, items) / eval_arith_simple(y, items),
        ArithCtx::Neg(x) => -eval_arith_simple(x, items),
    }
}

/// Evaluates a resolved `having` without history.
pub fn eval_having_simple(h: &HavingCtx, items: &[Value]) -> bool {
    match h {
        HavingCtx::Cmp { op, left, right } => {
            let (a, b) = (
                eval_arith_simple(left, items),
                eval_arith_simple(right, items),
            );
            if a.is_nan() || b.is_nan() {
                return false;
            }
            match op {
                AstCmp::Eq => a == b,
                AstCmp::Ne => a != b,
                AstCmp::Lt => a < b,
                AstCmp::Le => a <= b,
                AstCmp::Gt => a > b,
                AstCmp::Ge => a >= b,
            }
        }
        HavingCtx::And(x, y) => eval_having_simple(x, items) && eval_having_simple(y, items),
        HavingCtx::Or(x, y) => eval_having_simple(x, items) || eval_having_simple(y, items),
        HavingCtx::Not(x) => !eval_having_simple(x, items),
    }
}

/// Shared aggregate accumulator (also used by the anomaly executor).
#[derive(Debug, Default, Clone)]
pub struct Accum {
    pub count: u64,
    pub sum: f64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub distinct: std::collections::HashSet<Value>,
}

impl Accum {
    /// Folds one value in.
    pub fn update(&mut self, v: &Value, need_distinct: bool) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
        if need_distinct {
            self.distinct.insert(v.clone());
        }
    }

    /// Final aggregate value. Empty accumulators yield 0 for counts/sums
    /// and NULL for avg/min/max.
    pub fn result(&self, func: AggFunc, distinct: bool) -> Value {
        match func {
            AggFunc::Count => Value::Int(if distinct {
                self.distinct.len() as i64
            } else {
                self.count as i64
            }),
            AggFunc::Sum => {
                if distinct {
                    Value::Float(self.distinct.iter().filter_map(Value::as_f64).sum())
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if distinct {
                    if self.distinct.is_empty() {
                        Value::Null
                    } else {
                        let s: f64 = self.distinct.iter().filter_map(Value::as_f64).sum();
                        Value::Float(s / self.distinct.len() as f64)
                    }
                } else if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Moving-average computation over a value history (latest value last,
/// including the current window). Used by anomaly `having`.
pub fn moving_average(kind: MaKind, history: &[f64], param: f64) -> f64 {
    if history.is_empty() {
        return f64::NAN;
    }
    match kind {
        MaKind::Sma => {
            let n = (param as usize).max(1).min(history.len());
            let tail = &history[history.len() - n..];
            tail.iter().sum::<f64>() / n as f64
        }
        MaKind::Cma => history.iter().sum::<f64>() / history.len() as f64,
        MaKind::Wma => {
            let n = (param as usize).max(1).min(history.len());
            let tail = &history[history.len() - n..];
            let mut num = 0.0;
            let mut den = 0.0;
            for (i, v) in tail.iter().enumerate() {
                let w = (i + 1) as f64;
                num += w * v;
                den += w;
            }
            num / den
        }
        MaKind::Ewma => {
            let alpha = param;
            let mut acc = history[0];
            for v in &history[1..] {
                acc = alpha * acc + (1.0 - alpha) * v;
            }
            acc
        }
    }
}

/// Projects joined tuples into final result rows, applying the return
/// clause semantics.
pub fn assemble(
    ctx: &QueryContext,
    joined: &Joined,
    _stats: &mut EngineStats,
) -> Result<EngineResult, EngineError> {
    // Resolve items to (pattern, col) / aggregate specs.
    enum Item {
        Field {
            pattern: usize,
            col: usize,
        },
        Agg {
            func: AggFunc,
            distinct: bool,
            pattern: usize,
            col: usize,
        },
    }
    let items: Vec<(Item, String)> = ctx
        .ret
        .items
        .iter()
        .map(|it| {
            let item = match &it.expr {
                RetExprCtx::Field(f) => Item::Field {
                    pattern: f.pattern,
                    col: resolve_field(f, ctx.patterns[f.pattern].object_kind)?,
                },
                RetExprCtx::Agg {
                    func,
                    distinct,
                    arg,
                } => Item::Agg {
                    func: *func,
                    distinct: *distinct,
                    pattern: arg.pattern,
                    col: resolve_field(arg, ctx.patterns[arg.pattern].object_kind)?,
                },
            };
            Ok((item, it.name.clone()))
        })
        .collect::<Result<Vec<_>, EngineError>>()?;

    let slots: Vec<usize> = (0..ctx.patterns.len())
        .map(|p| joined.tuples.slot(p).expect("all patterns joined"))
        .collect();
    let value_of = |t: &[u32], pattern: usize, col: usize| -> Value {
        let row = &joined.matches.rows(pattern)[t[slots[pattern]] as usize];
        row[col].clone()
    };

    let has_agg = items.iter().any(|(i, _)| matches!(i, Item::Agg { .. }));
    let mut rows: Vec<Vec<Value>> = if has_agg {
        // Group by the `group by` items' values.
        let mut groups: HashMap<Vec<Value>, (Vec<Value>, Vec<Accum>)> = HashMap::new();
        let agg_idx: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (i, _))| matches!(i, Item::Agg { .. }))
            .map(|(k, _)| k)
            .collect();
        for t in &joined.tuples.tuples {
            let key: Vec<Value> = ctx
                .group_by
                .iter()
                .map(|&gi| match &items[gi].0 {
                    Item::Field { pattern, col } => value_of(t, *pattern, *col),
                    Item::Agg { .. } => Value::Null,
                })
                .collect();
            let entry = groups.entry(key).or_insert_with(|| {
                let fields: Vec<Value> = items
                    .iter()
                    .map(|(i, _)| match i {
                        Item::Field { pattern, col } => value_of(t, *pattern, *col),
                        Item::Agg { .. } => Value::Null,
                    })
                    .collect();
                (fields, agg_idx.iter().map(|_| Accum::default()).collect())
            });
            for (slot, &k) in agg_idx.iter().enumerate() {
                if let Item::Agg {
                    distinct,
                    pattern,
                    col,
                    ..
                } = &items[k].0
                {
                    entry.1[slot].update(&value_of(t, *pattern, *col), *distinct);
                }
            }
        }
        let mut grouped: Vec<_> = groups.into_iter().collect();
        grouped.sort_by(|a, b| a.0.cmp(&b.0));
        grouped
            .into_iter()
            .map(|(_, (mut fields, accums))| {
                for (slot, &k) in agg_idx.iter().enumerate() {
                    if let Item::Agg { func, distinct, .. } = &items[k].0 {
                        fields[k] = accums[slot].result(*func, *distinct);
                    }
                }
                fields
            })
            .collect()
    } else {
        joined
            .tuples
            .tuples
            .iter()
            .map(|t| {
                items
                    .iter()
                    .map(|(i, _)| match i {
                        Item::Field { pattern, col } => value_of(t, *pattern, *col),
                        Item::Agg { .. } => Value::Null,
                    })
                    .collect()
            })
            .collect()
    };

    // having (non-window form).
    if let Some(h) = &ctx.having {
        rows.retain(|r| eval_having_simple(h, r));
    }
    finish(ctx, items.iter().map(|(_, n)| n.clone()).collect(), rows)
}

/// Applies distinct/sort/top/count and wraps the result (shared by the
/// multievent and anomaly paths).
pub fn finish(
    ctx: &QueryContext,
    columns: Vec<String>,
    mut rows: Vec<Vec<Value>>,
) -> Result<EngineResult, EngineError> {
    if ctx.ret.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }
    if !ctx.sort_by.is_empty() {
        rows.sort_by(|a, b| {
            for (col, asc) in &ctx.sort_by {
                let ord = a[*col].cmp(&b[*col]);
                if ord != std::cmp::Ordering::Equal {
                    return if *asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = ctx.top {
        rows.truncate(n);
    }
    if ctx.ret.count {
        return Ok(EngineResult {
            columns: vec!["count".to_string()],
            rows: vec![vec![Value::Int(rows.len() as i64)]],
        });
    }
    Ok(EngineResult { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_results() {
        let mut a = Accum::default();
        for v in [Value::Int(1), Value::Int(3), Value::Int(3), Value::Null] {
            a.update(&v, true);
        }
        assert_eq!(a.result(AggFunc::Count, false), Value::Int(3));
        assert_eq!(a.result(AggFunc::Count, true), Value::Int(2));
        assert_eq!(a.result(AggFunc::Sum, false), Value::Float(7.0));
        assert_eq!(a.result(AggFunc::Min, false), Value::Int(1));
        assert_eq!(a.result(AggFunc::Max, false), Value::Int(3));
        match a.result(AggFunc::Avg, false) {
            Value::Float(x) => assert!((x - 7.0 / 3.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
        let empty = Accum::default();
        assert_eq!(empty.result(AggFunc::Count, false), Value::Int(0));
        assert_eq!(empty.result(AggFunc::Avg, false), Value::Null);
    }

    #[test]
    fn moving_averages() {
        let h = [1.0, 2.0, 3.0, 4.0];
        assert!((moving_average(MaKind::Sma, &h, 2.0) - 3.5).abs() < 1e-9);
        assert!(
            (moving_average(MaKind::Sma, &h, 10.0) - 2.5).abs() < 1e-9,
            "clamped to len"
        );
        assert!((moving_average(MaKind::Cma, &h, 0.0) - 2.5).abs() < 1e-9);
        // WMA over last 3: (1*2 + 2*3 + 3*4) / 6 = 20/6.
        assert!((moving_average(MaKind::Wma, &h, 3.0) - 20.0 / 6.0).abs() < 1e-9);
        // EWMA alpha=0.5: ((1*.5+.5*2)*.5+.5*3)*.5+.5*4 = 3.125... compute:
        // 1 → .5+1=1.5 → .75+1.5=2.25 → 1.125+2=3.125.
        assert!((moving_average(MaKind::Ewma, &h, 0.5) - 3.125).abs() < 1e-9);
        assert!(moving_average(MaKind::Sma, &[], 3.0).is_nan());
    }

    #[test]
    fn having_eval() {
        let items = vec![Value::str("p"), Value::Int(10)];
        let h = HavingCtx::Cmp {
            op: AstCmp::Gt,
            left: ArithCtx::Item(1),
            right: ArithCtx::Num(5.0),
        };
        assert!(eval_having_simple(&h, &items));
        // String item → NaN → false.
        let h = HavingCtx::Cmp {
            op: AstCmp::Gt,
            left: ArithCtx::Item(0),
            right: ArithCtx::Num(5.0),
        };
        assert!(!eval_having_simple(&h, &items));
        // Arithmetic combinators.
        let h = HavingCtx::Cmp {
            op: AstCmp::Eq,
            left: ArithCtx::Div(
                Box::new(ArithCtx::Mul(
                    Box::new(ArithCtx::Item(1)),
                    Box::new(ArithCtx::Num(3.0)),
                )),
                Box::new(ArithCtx::Num(2.0)),
            ),
            right: ArithCtx::Num(15.0),
        };
        assert!(eval_having_simple(&h, &items));
    }
}
