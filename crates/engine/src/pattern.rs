//! Per-pattern data-query execution against the store.
//!
//! A pattern execution scans the subject/object entity tables (index-
//! accelerated), scans the `events` table with partition pruning — in
//! parallel across partitions/segments when configured (the paper's
//! time-window partition parallelism, Sec. 5.2) — and emits flattened
//! match rows.

use crate::error::EngineError;
use crate::exec::{self, ExecPolicy, ScatterProfile};
use crate::layout;
use crate::synth::{apply_extra, synthesize, DataQuery, ExtraCstr};
use aiql_core::PatternCtx;
use aiql_model::EntityKind;
use aiql_rdb::{CmpOp, Expr, PartKey, Prune, Row, Value};
use aiql_storage::{schema, EventStore, SegmentedStore};
use std::collections::HashMap;
use std::time::Instant;

/// Which store a query runs against.
#[derive(Clone, Copy)]
pub enum StoreRef<'a> {
    Single(&'a EventStore),
    Segmented(&'a SegmentedStore),
}

/// Execution statistics for one query.
#[derive(Debug, Default, Clone)]
pub struct EngineStats {
    /// Number of data queries issued (one per pattern execution).
    pub data_queries: u32,
    /// Rows touched by storage scans.
    pub rows_scanned: u64,
    /// Match counts per executed pattern (by pattern index).
    pub matches: Vec<(usize, usize)>,
    /// Tuples considered during joins.
    pub join_work: u64,
    /// Per-scan access-path and pruning accounting, in execution order —
    /// the raw material of the session API's `EXPLAIN`.
    pub scans: Vec<ScanRecord>,
}

/// Which side of a pattern's data query a scan served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanTarget {
    /// The events-table scan.
    Events,
    /// The subject entity table (constrained scan or batch ID lookup).
    Subject,
    /// The object entity table (constrained scan or batch ID lookup).
    Object,
}

impl ScanTarget {
    /// Display name used in EXPLAIN output.
    pub fn name(self) -> &'static str {
        match self {
            ScanTarget::Events => "events",
            ScanTarget::Subject => "subject",
            ScanTarget::Object => "object",
        }
    }
}

/// One storage scan issued while executing a pattern's data query.
#[derive(Debug, Clone)]
pub struct ScanRecord {
    /// Pattern index the scan served.
    pub pattern: usize,
    /// Which side of the data query it was.
    pub target: ScanTarget,
    /// The table scanned.
    pub table: String,
    /// Access paths, partition pruning, zone-map skips, rows touched.
    pub profile: aiql_rdb::ScanProfile,
    /// How the scan scattered across shards (None for entity scans and
    /// unsharded event scans).
    pub scatter: Option<ScatterProfile>,
}

/// Deadline wrapper shared across the engine.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(pub Option<Instant>);

impl Deadline {
    /// No deadline.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// Errors when the deadline has passed.
    #[inline]
    pub fn check(&self) -> Result<(), EngineError> {
        match self.0 {
            Some(d) if Instant::now() >= d => Err(EngineError::Timeout),
            _ => Ok(()),
        }
    }
}

/// Event rows produced by a scan: borrowed straight out of the store on the
/// single-node path (no per-row clone), owned only when they had to cross a
/// segment boundary.
enum EventRows<'a> {
    Borrowed(Vec<&'a Row>),
    Owned(Vec<Row>),
}

impl<'a> StoreRef<'a> {
    fn scan_entities_profiled(
        &self,
        kind: EntityKind,
        conjuncts: &[Expr],
        scanned: &mut u64,
        profile: &mut aiql_rdb::ScanProfile,
    ) -> Vec<Row> {
        match self {
            StoreRef::Single(s) => s.scan_entities_profiled(kind, conjuncts, scanned, profile),
            StoreRef::Segmented(s) => {
                let parts = s
                    .sdb()
                    .run_on_all(|db| {
                        let t = db
                            .plain(schema::entity_table(kind))
                            .expect("entity tables are plain");
                        let mut local = 0u64;
                        let mut prof = aiql_rdb::ScanProfile {
                            partitions_total: 1,
                            partitions_scanned: 1,
                            ..Default::default()
                        };
                        let (_, pos) = t.select_profiled(conjuncts, &mut local, &mut prof);
                        Ok((
                            local,
                            prof,
                            pos.into_iter()
                                .map(|p| t.row(p).clone())
                                .collect::<Vec<Row>>(),
                        ))
                    })
                    .expect("entity scan cannot fail");
                let mut out = Vec::new();
                for (local, prof, rows) in parts {
                    *scanned += local;
                    profile.merge(&prof);
                    out.extend(rows);
                }
                out
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_events(
        &self,
        conjuncts: &[Expr],
        prune: &Prune,
        exec: ExecPolicy,
        deadline: Deadline,
        scanned: &mut u64,
        profile: &mut aiql_rdb::ScanProfile,
        scatter: &mut Option<ScatterProfile>,
    ) -> Result<EventRows<'a>, EngineError> {
        deadline.check()?;
        match self {
            StoreRef::Single(s) => {
                if exec.parallel {
                    if let Some(pt) = s.events_partitioned() {
                        let (rows, sp) = scatter_partition_scan(
                            pt,
                            s.shard_count(),
                            conjuncts,
                            prune,
                            exec,
                            deadline,
                            scanned,
                            profile,
                        )?;
                        *scatter = Some(sp);
                        return Ok(EventRows::Borrowed(rows));
                    }
                }
                Ok(EventRows::Borrowed(
                    s.scan_events_profiled(conjuncts, prune, scanned, profile),
                ))
            }
            StoreRef::Segmented(s) => {
                // Segments scan in parallel; within each, partitions prune.
                let parts = s.sdb().run_on_all(|db| {
                    let pt = db
                        .partitioned(schema::EVENTS)
                        .expect("segmented events are partitioned");
                    let derived = pt.prune_from_conjuncts(conjuncts);
                    let merged = merge_prune(prune, &derived);
                    let mut local = 0u64;
                    let mut prof = aiql_rdb::ScanProfile::default();
                    let rows: Vec<Row> = pt
                        .select_refs_profiled(conjuncts, &merged, &mut local, &mut prof)
                        .into_iter()
                        .cloned()
                        .collect();
                    Ok((local, prof, rows))
                })?;
                let mut out = Vec::new();
                for (local, prof, rows) in parts {
                    *scanned += local;
                    profile.merge(&prof);
                    out.extend(rows);
                }
                Ok(EventRows::Owned(out))
            }
        }
    }
}

fn merge_prune(a: &Prune, b: &Prune) -> Prune {
    Prune {
        day_lo: match (a.day_lo, b.day_lo) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        },
        day_hi: match (a.day_hi, b.day_hi) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        },
        agents: a.agents.clone().or_else(|| b.agents.clone()),
    }
}

/// Scatters the admitted partitions of a sharded event table across the
/// execution pool and gathers the borrowed rows back in sequential order.
///
/// Partitions are grouped into shards by `shard_of` (the store layout's
/// routing function); each occupied shard becomes one pool task scanning
/// its partitions in key order. Tasks are dispatched **largest estimated
/// shard first** so stragglers start earliest, and the gather merges the
/// per-partition results sorted by `PartKey` — exactly the order the
/// sequential `select_refs_profiled` walk produces, which is what lets the
/// proptest oracle demand row-identical output. When pruning confines the
/// scan to a single shard, the scan runs shard-local on the coordinator
/// (no pool round-trip) — the in-process analogue of the segment layer's
/// `query_local` vs `query_gather`.
///
/// Rows stay borrowed throughout: workers collect `&Row` per partition,
/// so no event row is cloned regardless of parallelism. A worker panic
/// surfaces as [`EngineError::Worker`] (see `crate::exec`), never a
/// process abort.
#[allow(clippy::too_many_arguments)]
fn scatter_partition_scan<'a>(
    pt: &'a aiql_rdb::PartitionedTable,
    shards: usize,
    conjuncts: &[Expr],
    prune: &Prune,
    exec: ExecPolicy,
    deadline: Deadline,
    scanned: &mut u64,
    profile: &mut aiql_rdb::ScanProfile,
) -> Result<(Vec<&'a Row>, ScatterProfile), EngineError> {
    let derived = pt.prune_from_conjuncts(conjuncts);
    let merged = merge_prune(prune, &derived);
    let shards = shards.max(1);
    let buckets = pt.shards_for(&merged, shards);
    let occupied: Vec<(usize, Vec<(PartKey, &'a aiql_rdb::Table)>)> = buckets
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .collect();

    profile.partitions_total += pt.partition_count() as u32;
    profile.partitions_scanned += occupied.iter().map(|(_, b)| b.len() as u32).sum::<u32>();
    profile.shards_total += shards as u32;
    profile.shards_scanned += occupied.len() as u32;

    let mut sp = ScatterProfile {
        shards_total: shards as u32,
        shards_scanned: occupied.len() as u32,
        colocated: occupied.len() <= 1,
        ..Default::default()
    };

    // Scatter order: estimated rows (admitted partition sizes — the same
    // statistic the scheduler's scorer uses) descending.
    let mut order: Vec<usize> = (0..occupied.len()).collect();
    let est: Vec<usize> = occupied
        .iter()
        .map(|(_, b)| b.iter().map(|(_, t)| t.len()).sum())
        .collect();
    order.sort_by_key(|&i| std::cmp::Reverse(est[i]));

    let tasks: Vec<_> = order
        .iter()
        .map(|&i| {
            let (sid, bucket) = &occupied[i];
            let sid = *sid;
            move || {
                let t0 = Instant::now();
                let mut local = 0u64;
                let mut prof = aiql_rdb::ScanProfile::default();
                let mut parts: Vec<(PartKey, Vec<&'a Row>)> = Vec::with_capacity(bucket.len());
                for (k, t) in bucket {
                    let (_, pos) = t.select_profiled(conjuncts, &mut local, &mut prof);
                    parts.push((*k, pos.into_iter().map(|p| t.row(p)).collect()));
                }
                let m = crate::metrics::metrics();
                m.shard_scan_micros.record(t0.elapsed().as_micros() as u64);
                m.shard_scan_rows
                    .record(parts.iter().map(|(_, r)| r.len() as u64).sum());
                (sid, local, prof, parts)
            }
        })
        .collect();

    let width = exec.width().min(tasks.len().max(1));
    sp.workers = width as u32;
    let run = exec::scatter(tasks, width)?;
    deadline.check()?;
    sp.queue_wait_micros = run.queue_wait_micros;

    // Gather: merge per-partition results by key — sequential scan order.
    let mut tagged: Vec<(PartKey, Vec<&'a Row>)> = Vec::new();
    for (sid, local, prof, parts) in run.results {
        *scanned += local;
        profile.merge(&prof);
        sp.scatter_order.push(sid as u32);
        sp.rows_per_shard
            .push(parts.iter().map(|(_, r)| r.len() as u64).sum());
        tagged.extend(parts);
    }
    tagged.sort_by_key(|(k, _)| *k);
    let out: Vec<&'a Row> = tagged.into_iter().flat_map(|(_, r)| r).collect();
    Ok((out, sp))
}

/// When an entity filter yields at most this many IDs, the executor pushes
/// an IN-list onto the events scan so the `subject_id`/`object_id` indexes
/// can drive it.
const ID_PUSHDOWN_LIMIT: usize = 20_000;

/// Executes one pattern's data query; returns flattened match rows.
pub fn execute_pattern(
    store: StoreRef<'_>,
    p: &PatternCtx,
    extra: &ExtraCstr,
    exec: ExecPolicy,
    deadline: Deadline,
    stats: &mut EngineStats,
) -> Result<Vec<Row>, EngineError> {
    // Trace the whole data query as one `scan:<pattern>` phase, named by
    // the event variable when the query declared one (`as evt1`).
    let _scan = aiql_telemetry::trace::span(&match &p.evt_var {
        Some(v) => format!("scan:{v}"),
        None => format!("scan:p{}", p.idx),
    });
    let mut q: DataQuery = synthesize(p);
    apply_extra(&mut q, extra);
    stats.data_queries += 1;

    // 1. Entity-side scans (only when constrained — otherwise resolved
    //    lazily from the event rows).
    let subj_map = if q.subject.is_empty() {
        None
    } else {
        Some(scan_entity_map(
            &store,
            EntityKind::Process,
            &q.subject,
            p.idx,
            ScanTarget::Subject,
            stats,
        ))
    };
    let obj_map = if q.object.is_empty() {
        None
    } else {
        Some(scan_entity_map(
            &store,
            p.object_kind,
            &q.object,
            p.idx,
            ScanTarget::Object,
            stats,
        ))
    };
    deadline.check()?;

    // Early exit: a constrained entity side with no matches.
    if subj_map.as_ref().is_some_and(HashMap::is_empty)
        || obj_map.as_ref().is_some_and(HashMap::is_empty)
    {
        stats.matches.push((p.idx, 0));
        return Ok(Vec::new());
    }

    // 2. Push small ID sets into the events scan.
    let mut event_conjuncts = q.event.clone();
    if let Some(m) = &subj_map {
        if m.len() <= ID_PUSHDOWN_LIMIT {
            event_conjuncts.push(Expr::In(
                Box::new(Expr::Col(schema::ev::SUBJECT)),
                m.keys().map(|&k| Value::Int(k)).collect(),
            ));
        }
    }
    if let Some(m) = &obj_map {
        if m.len() <= ID_PUSHDOWN_LIMIT {
            event_conjuncts.push(Expr::In(
                Box::new(Expr::Col(schema::ev::OBJECT)),
                m.keys().map(|&k| Value::Int(k)).collect(),
            ));
        }
    }

    // 3. Events scan. Rows stay borrowed from the store (or the segment
    //    gather buffer) — they are only read and flattened, never kept.
    let mut scanned = 0u64;
    let mut profile = aiql_rdb::ScanProfile::default();
    let mut scatter = None;
    let scan = store.scan_events(
        &event_conjuncts,
        &q.prune,
        exec,
        deadline,
        &mut scanned,
        &mut profile,
        &mut scatter,
    )?;
    stats.scans.push(ScanRecord {
        pattern: p.idx,
        target: ScanTarget::Events,
        table: schema::EVENTS.to_string(),
        profile,
        scatter,
    });
    let owned_events: Vec<Row>;
    let events: Vec<&Row> = match scan {
        EventRows::Borrowed(v) => v,
        EventRows::Owned(o) => {
            owned_events = o;
            owned_events.iter().collect()
        }
    };
    stats.rows_scanned += scanned;

    // 4. Filter by entity maps and resolve missing entity rows in batches.
    let mut kept: Vec<&Row> = Vec::with_capacity(events.len());
    let mut need_subj: Vec<i64> = Vec::new();
    let mut need_obj: Vec<i64> = Vec::new();
    for ev in events {
        let sid = ev[schema::ev::SUBJECT].as_int().unwrap_or(-1);
        let oid = ev[schema::ev::OBJECT].as_int().unwrap_or(-1);
        match &subj_map {
            Some(m) if !m.contains_key(&sid) => continue,
            Some(_) => {}
            None => need_subj.push(sid),
        }
        match &obj_map {
            Some(m) if !m.contains_key(&oid) => continue,
            Some(_) => {}
            None => need_obj.push(oid),
        }
        kept.push(ev);
    }
    let subj_map = match subj_map {
        Some(m) => m,
        None => batch_lookup(
            &store,
            EntityKind::Process,
            need_subj,
            p.idx,
            ScanTarget::Subject,
            stats,
        ),
    };
    let obj_map = match obj_map {
        Some(m) => m,
        None => batch_lookup(
            &store,
            p.object_kind,
            need_obj,
            p.idx,
            ScanTarget::Object,
            stats,
        ),
    };
    deadline.check()?;

    // 5. Flatten.
    let mut out = Vec::with_capacity(kept.len());
    for ev in kept {
        let sid = ev[schema::ev::SUBJECT].as_int().unwrap_or(-1);
        let oid = ev[schema::ev::OBJECT].as_int().unwrap_or(-1);
        let (Some(s), Some(o)) = (subj_map.get(&sid), obj_map.get(&oid)) else {
            // Entity row missing (dangling reference) — drop the event.
            continue;
        };
        out.push(layout::flatten(ev, s, o));
    }
    stats.matches.push((p.idx, out.len()));
    Ok(out)
}

fn scan_entity_map(
    store: &StoreRef<'_>,
    kind: EntityKind,
    conjuncts: &[Expr],
    pattern: usize,
    target: ScanTarget,
    stats: &mut EngineStats,
) -> HashMap<i64, Row> {
    let mut scanned = 0u64;
    let mut profile = aiql_rdb::ScanProfile::default();
    let rows = store.scan_entities_profiled(kind, conjuncts, &mut scanned, &mut profile);
    stats.rows_scanned += scanned;
    stats.scans.push(ScanRecord {
        pattern,
        target,
        table: schema::entity_table(kind).to_string(),
        profile,
        scatter: None,
    });
    rows.into_iter()
        .filter_map(|r| r[0].as_int().map(|id| (id, r)))
        .collect()
}

fn batch_lookup(
    store: &StoreRef<'_>,
    kind: EntityKind,
    mut ids: Vec<i64>,
    pattern: usize,
    target: ScanTarget,
    stats: &mut EngineStats,
) -> HashMap<i64, Row> {
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        return HashMap::new();
    }
    let conjuncts = vec![Expr::In(
        Box::new(Expr::Col(0)),
        ids.iter().map(|&i| Value::Int(i)).collect(),
    )];
    scan_entity_map(store, kind, &conjuncts, pattern, target, stats)
}

/// Convenience: the event-start lower/upper bound conjunct positions used in
/// tests.
pub fn start_bound(lo: i64) -> Expr {
    Expr::cmp_lit(schema::ev::START, CmpOp::Ge, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;
    use aiql_model::{AgentId, Dataset, Entity, Event, OpType, Timestamp};
    use aiql_storage::StoreConfig;

    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        let a = AgentId(1);
        let cmd = d.add_entity(Entity::process(1.into(), a, "cmd.exe", 100));
        let osql = d.add_entity(Entity::process(2.into(), a, "osql.exe", 101));
        let svchost = d.add_entity(Entity::process(3.into(), a, "svchost.exe", 102));
        let dump = d.add_entity(Entity::file(4.into(), a, "c:\\backup1.dmp"));
        let t0 = Timestamp::from_ymd(2017, 1, 1).unwrap().0;
        d.add_event(Event::new(
            1.into(),
            a,
            cmd,
            OpType::Start,
            osql,
            EntityKind::Process,
            Timestamp(t0 + 100),
        ));
        d.add_event(Event::new(
            2.into(),
            a,
            osql,
            OpType::Write,
            dump,
            EntityKind::File,
            Timestamp(t0 + 200),
        ));
        d.add_event(Event::new(
            3.into(),
            a,
            svchost,
            OpType::Read,
            dump,
            EntityKind::File,
            Timestamp(t0 + 300),
        ));
        d
    }

    fn policy(parallel: bool) -> ExecPolicy {
        ExecPolicy {
            parallel,
            workers: 0,
        }
    }

    fn run(src: &str, parallel: bool) -> Vec<Row> {
        let store = EventStore::ingest(&dataset(), StoreConfig::partitioned()).unwrap();
        let ctx = compile(src).unwrap();
        let mut stats = EngineStats::default();
        execute_pattern(
            StoreRef::Single(&store),
            &ctx.patterns[0],
            &ExtraCstr::default(),
            policy(parallel),
            Deadline::none(),
            &mut stats,
        )
        .unwrap()
    }

    #[test]
    fn constrained_subject_and_object() {
        let rows = run(
            r#"proc p["%osql%"] write file f["%backup1.dmp"] return p, f"#,
            false,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), layout::MATCH_WIDTH);
        assert_eq!(
            rows[0][layout::SUBJ_OFF + schema::proc::EXE_NAME],
            Value::str("osql.exe")
        );
        assert_eq!(
            rows[0][layout::OBJ_OFF + schema::file::NAME],
            Value::str("c:\\backup1.dmp")
        );
    }

    #[test]
    fn unconstrained_sides_lazy_resolved() {
        let rows = run("proc p read || write file f return p, f", false);
        assert_eq!(rows.len(), 2, "write + read of the dump");
        // Subject rows resolved by batch lookup.
        assert!(rows
            .iter()
            .any(|r| r[layout::SUBJ_OFF + schema::proc::EXE_NAME] == Value::str("svchost.exe")));
    }

    #[test]
    fn no_matches_when_entity_filter_empty() {
        let rows = run(r#"proc p["%powershell%"] write file f return p"#, false);
        assert!(rows.is_empty());
    }

    #[test]
    fn parallel_equals_sequential() {
        let src = r#"(at "01/01/2017") proc p read || write || start file f return p, f"#;
        let mut a = run(src, false);
        let mut b = run(src, true);
        let key = |r: &Row| r[schema::ev::ID].clone();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn scatter_rows_identical_to_sequential_across_shards() {
        // Stronger than `parallel_equals_sequential`: no sorting — the
        // gather must reproduce the sequential row order exactly, for
        // every shard count and scatter width.
        let src = r#"proc p read || write || start file f return p, f"#;
        let ctx = compile(src).unwrap();
        for shards in [1u32, 2, 3, 5, 8] {
            let store =
                EventStore::ingest(&dataset(), StoreConfig::partitioned().with_shards(shards))
                    .unwrap();
            let mut s1 = EngineStats::default();
            let seq = execute_pattern(
                StoreRef::Single(&store),
                &ctx.patterns[0],
                &ExtraCstr::default(),
                policy(false),
                Deadline::none(),
                &mut s1,
            )
            .unwrap();
            for workers in [1usize, 2, 4] {
                let mut s2 = EngineStats::default();
                let par = execute_pattern(
                    StoreRef::Single(&store),
                    &ctx.patterns[0],
                    &ExtraCstr::default(),
                    ExecPolicy {
                        parallel: true,
                        workers,
                    },
                    Deadline::none(),
                    &mut s2,
                )
                .unwrap();
                assert_eq!(par, seq, "shards={shards} workers={workers}");
                // The events scan carries the scatter shape for EXPLAIN.
                let ev_scan = s2
                    .scans
                    .iter()
                    .find(|s| s.target == ScanTarget::Events)
                    .unwrap();
                let sp = ev_scan.scatter.as_ref().expect("scatter profile");
                assert_eq!(sp.shards_total, shards);
                assert_eq!(sp.scatter_order.len(), sp.shards_scanned as usize);
                assert_eq!(sp.rows_per_shard.len(), sp.shards_scanned as usize);
            }
        }
    }

    #[test]
    fn window_prunes_everything_outside() {
        let rows = run(r#"(at "06/01/2019") proc p write file f return p"#, false);
        assert!(rows.is_empty());
    }

    #[test]
    fn extra_in_list_constrains() {
        let store = EventStore::ingest(&dataset(), StoreConfig::partitioned()).unwrap();
        let ctx = compile("proc p read || write file f return p, f").unwrap();
        let extra = ExtraCstr {
            in_lists: vec![(
                crate::synth::Side::Event,
                schema::ev::SUBJECT,
                vec![Value::Int(3)],
            )],
            time_lo: None,
            time_hi: None,
        };
        let mut stats = EngineStats::default();
        let rows = execute_pattern(
            StoreRef::Single(&store),
            &ctx.patterns[0],
            &extra,
            policy(false),
            Deadline::none(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows.len(), 1, "only svchost's read");
    }

    #[test]
    fn segmented_store_matches_single() {
        let d = dataset();
        let single = EventStore::ingest(&d, StoreConfig::partitioned()).unwrap();
        let seg = SegmentedStore::ingest(&d, 3, true).unwrap();
        let ctx = compile("proc p read || write || start file f return p, f").unwrap();
        let mut s1 = EngineStats::default();
        let mut s2 = EngineStats::default();
        let mut a = execute_pattern(
            StoreRef::Single(&single),
            &ctx.patterns[0],
            &ExtraCstr::default(),
            policy(false),
            Deadline::none(),
            &mut s1,
        )
        .unwrap();
        let mut b = execute_pattern(
            StoreRef::Segmented(&seg),
            &ctx.patterns[0],
            &ExtraCstr::default(),
            policy(false),
            Deadline::none(),
            &mut s2,
        )
        .unwrap();
        let key = |r: &Row| r[schema::ev::ID].clone();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }
}
