//! The AIQL query execution engine (paper Sec. 5).
//!
//! The engine executes [`aiql_core::QueryContext`]s against an
//! [`aiql_storage::EventStore`] (or a Greenplum-style
//! [`aiql_storage::SegmentedStore`]):
//!
//! 1. per event pattern it **synthesizes a data query** ([`synth`]),
//! 2. a **scheduler** orders and constrains the data queries —
//!    relationship-based (paper Algorithm 1) or fetch-and-filter
//!    ([`schedule`]),
//! 3. events scans **parallelize across time/space partitions** and MPP
//!    segments ([`pattern`]),
//! 4. **dependency** queries arrive pre-compiled to multievent form (the
//!    rewrite lives in `aiql-core`), and
//! 5. **anomaly** queries run through the sliding-window executor with
//!    history states and moving averages ([`anomaly`]).
//!
//! # Examples
//!
//! ```
//! use aiql_engine::Engine;
//! use aiql_model::{AgentId, Dataset, Entity, EntityKind, Event, OpType, Timestamp};
//! use aiql_storage::{EventStore, StoreConfig};
//!
//! let mut data = Dataset::new();
//! let a = AgentId(1);
//! let bash = data.add_entity(Entity::process(1.into(), a, "bash", 7));
//! let hist = data.add_entity(Entity::file(2.into(), a, "/home/u/.bash_history"));
//! data.add_event(Event::new(
//!     1.into(), a, bash, OpType::Read, hist, EntityKind::File,
//!     Timestamp::from_ymd(2017, 1, 1).unwrap(),
//! ));
//! let store = EventStore::ingest(&data, StoreConfig::partitioned()).unwrap();
//!
//! let result = Engine::new(&store)
//!     .run(r#"proc p read file f["%.bash_history"] return p, f"#)
//!     .unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod anomaly;
pub mod error;
pub mod exec;
pub mod layout;
mod metrics;
pub mod pattern;
pub mod result;
pub mod schedule;
pub mod scoring;
pub mod session;
pub mod synth;
pub mod tupleset;

pub use error::EngineError;
pub use exec::{ExecPolicy, ScatterProfile};
pub use pattern::{Deadline, EngineStats, ScanRecord, ScanTarget, StoreRef};
pub use result::EngineResult;
pub use schedule::Scheduler;
pub use scoring::ScoreModel;
pub use session::{Bound, Cursor, Explain, Params, PatternPlan, Prepared, Session};

use aiql_core::{PlanCache, QueryContext, QueryKind};
use aiql_storage::{EventStore, SegmentedStore, SharedStore, StoreStamp};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide plan cache behind the legacy one-shot entry points
/// ([`Engine::run`] / [`run_live`]): repeated identical source text is
/// lexed, parsed, and analyzed once, then served from the cache — the
/// session API's amortization without a session.
fn legacy_plan_cache() -> &'static Mutex<PlanCache> {
    static CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(PlanCache::new(session::SESSION_PLAN_CACHE_CAPACITY)))
}

/// Counters of the process-wide plan cache behind [`Engine::run`] /
/// [`run_live`] (hits, misses, entries, capacity) — the legacy path's
/// counterpart of [`Session::cache_stats`]. Hits and misses also feed the
/// global registry's `aiql_core_plan_cache_*` counters; the resident entry
/// count is mirrored into the `aiql_engine_legacy_plan_cache_entries`
/// gauge on every legacy-path compile.
pub fn legacy_cache_stats() -> aiql_core::CacheStats {
    legacy_plan_cache()
        .lock()
        .expect("plan cache lock poisoned")
        .stats()
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Data-query scheduling strategy.
    pub scheduler: Scheduler,
    /// Pruning-score model for relationship-based scheduling (paper
    /// Algorithm 1 default, or the Sec. 7 statistical refinement).
    pub scorer: ScoreModel,
    /// Parallelize event scans across partitions (time-window partition
    /// parallelism, paper Sec. 5.2), scattered over the process-wide
    /// execution pool by shard.
    pub parallel: bool,
    /// Scatter width in threads when `parallel` (coordinator included);
    /// `0` auto-sizes to `available_parallelism`. Capped at
    /// [`exec::MAX_WORKERS`].
    pub workers: usize,
    /// Optional wall-clock budget per query.
    pub budget: Option<Duration>,
}

impl EngineConfig {
    /// AIQL's full configuration: relationship scheduling + parallelism.
    pub fn aiql() -> EngineConfig {
        EngineConfig {
            scheduler: Scheduler::Relationship,
            scorer: ScoreModel::ConstraintCount,
            parallel: true,
            workers: 0,
            budget: None,
        }
    }

    /// The fetch-and-filter baseline configuration ("AIQL FF").
    pub fn fetch_filter() -> EngineConfig {
        EngineConfig {
            scheduler: Scheduler::FetchFilter,
            scorer: ScoreModel::ConstraintCount,
            parallel: false,
            workers: 1,
            budget: None,
        }
    }

    /// The Sec. 7 ablation: relationship scheduling driven by statistical
    /// cardinality estimates instead of constraint counts.
    pub fn aiql_statistical() -> EngineConfig {
        EngineConfig {
            scorer: ScoreModel::DataStatistics,
            ..EngineConfig::aiql()
        }
    }

    /// Sets the budget, builder style.
    pub fn with_budget(mut self, budget: Duration) -> EngineConfig {
        self.budget = Some(budget);
        self
    }

    /// Sets the scatter width, builder style (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> EngineConfig {
        self.workers = workers;
        self
    }

    /// The per-query execution policy this configuration implies.
    pub fn exec_policy(&self) -> exec::ExecPolicy {
        exec::ExecPolicy {
            parallel: self.parallel,
            workers: self.workers,
        }
    }
}

/// A cached physical plan for one statement: the relationship scheduler's
/// pattern-ordering scores.
///
/// Scores decide only the *order* patterns execute in (any order is
/// correct), so reusing them across bindings of a prepared statement is
/// the classic generic-plan tradeoff: skip per-call planning — which under
/// [`ScoreModel::DataStatistics`] measures real selectivities against the
/// store — at the cost of an ordering tuned to the first binding.
#[derive(Debug, Default)]
pub struct PlanSlot(std::sync::Mutex<Option<Vec<u32>>>);

impl PlanSlot {
    /// An empty slot; the first run through it plans and fills it.
    pub fn new() -> PlanSlot {
        PlanSlot::default()
    }

    /// Whether a plan has been cached.
    pub fn is_planned(&self) -> bool {
        self.0.lock().expect("plan slot poisoned").is_some()
    }
}

/// The query engine, bound to a store.
pub struct Engine<'a> {
    store: StoreRef<'a>,
    config: EngineConfig,
    plan: Option<&'a PlanSlot>,
}

/// A query outcome: result plus execution statistics and elapsed time.
#[derive(Debug, Clone)]
pub struct Outcome {
    pub result: EngineResult,
    pub stats: EngineStats,
    pub elapsed: Duration,
}

impl<'a> Engine<'a> {
    /// An engine over a single-node store with AIQL's default configuration
    /// (relationship-based scheduling, partition parallelism).
    pub fn new(store: &'a EventStore) -> Engine<'a> {
        Engine {
            store: StoreRef::Single(store),
            config: EngineConfig::aiql(),
            plan: None,
        }
    }

    /// An engine with an explicit configuration.
    pub fn with_config(store: &'a EventStore, config: EngineConfig) -> Engine<'a> {
        Engine {
            store: StoreRef::Single(store),
            config,
            plan: None,
        }
    }

    /// An engine over a segmented (MPP) store.
    pub fn segmented(store: &'a SegmentedStore, config: EngineConfig) -> Engine<'a> {
        Engine {
            store: StoreRef::Segmented(store),
            config,
            plan: None,
        }
    }

    /// Attaches a [`PlanSlot`]: the first query through this engine plans
    /// and fills it, later queries reuse the cached plan instead of
    /// re-scoring. Prepared statements attach their statement-level slot
    /// here.
    pub fn with_plan_slot(mut self, slot: &'a PlanSlot) -> Engine<'a> {
        self.plan = Some(slot);
        self
    }

    /// Compiles and runs an AIQL query, returning just the result.
    ///
    /// A thin back-compat wrapper over the prepared-statement machinery:
    /// compilation goes through the process-wide plan cache, so re-running
    /// identical source costs a lookup instead of a parse. For
    /// parameterized, iterated investigations use [`Session`] /
    /// [`Session::prepare`] instead.
    pub fn run(&self, source: &str) -> Result<EngineResult, EngineError> {
        self.run_outcome(source).map(|o| o.result)
    }

    /// Compiles and runs an AIQL query, returning result + statistics.
    /// Cached like [`Engine::run`].
    pub fn run_outcome(&self, source: &str) -> Result<Outcome, EngineError> {
        let stmt = {
            let mut cache = legacy_plan_cache()
                .lock()
                .expect("plan cache lock poisoned");
            let stmt = cache.get_or_compile(source)?;
            metrics::metrics()
                .legacy_cache_entries
                .set(cache.stats().entries as i64);
            stmt
        };
        match stmt.static_ctx() {
            Some(ctx) => self.run_ctx(ctx),
            // `$name` placeholders need a binding — surface the analyzer's
            // unbound-parameter error rather than executing nonsense.
            None => self.run_ctx(&stmt.bind(&aiql_core::ParamValues::new())?),
        }
    }

    /// The scheduler scores for `ctx`: from the attached [`PlanSlot`] when
    /// one is present and filled, computing (and caching) them otherwise.
    fn plan_scores(&self, ctx: &QueryContext) -> Vec<u32> {
        let Some(slot) = self.plan else {
            return scoring::scores(self.config.scorer, self.store, ctx);
        };
        let mut guard = slot.0.lock().expect("plan slot poisoned");
        match &*guard {
            Some(s) if s.len() == ctx.patterns.len() => s.clone(),
            _ => {
                let s = scoring::scores(self.config.scorer, self.store, ctx);
                *guard = Some(s.clone());
                s
            }
        }
    }

    /// Runs a pre-compiled query context.
    pub fn run_ctx(&self, ctx: &QueryContext) -> Result<Outcome, EngineError> {
        metrics::metrics().statements.inc();
        let started = Instant::now();
        let deadline = Deadline(self.config.budget.map(|b| started + b));
        let mut stats = EngineStats::default();
        let result = match ctx.kind {
            QueryKind::Anomaly => {
                let _anomaly = aiql_telemetry::trace::span("anomaly");
                anomaly::run_anomaly(
                    self.store,
                    ctx,
                    self.config.exec_policy(),
                    deadline,
                    &mut stats,
                )?
            }
            QueryKind::Multievent | QueryKind::Dependency => {
                let joined = match self.config.scheduler {
                    Scheduler::Relationship => {
                        let scores = {
                            let _plan = aiql_telemetry::trace::span("plan");
                            self.plan_scores(ctx)
                        };
                        schedule::relationship_based_scored(
                            self.store,
                            ctx,
                            &scores,
                            self.config.exec_policy(),
                            deadline,
                            &mut stats,
                        )?
                    }
                    Scheduler::FetchFilter => schedule::fetch_and_filter(
                        self.store,
                        ctx,
                        self.config.exec_policy(),
                        deadline,
                        &mut stats,
                    )?,
                };
                let _score = aiql_telemetry::trace::span("score");
                result::assemble(ctx, &joined, &mut stats)?
            }
        };
        Ok(Outcome {
            result,
            stats,
            elapsed: started.elapsed(),
        })
    }
}

/// A query outcome over a live store, tagged with the snapshot it saw.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Result, statistics, and elapsed time of the run.
    pub outcome: Outcome,
    /// The store version the whole query observed: the query pins one
    /// immutable snapshot for the duration of the run.
    pub stamp: StoreStamp,
}

/// Runs a query against a [`SharedStore`] at one consistent snapshot.
///
/// The engine pins the currently published [`aiql_storage::StoreSnapshot`]
/// — a wait-free `Arc` clone — and every scan of the run borrows from that
/// pinned snapshot. Appends submitted concurrently (e.g. by an
/// `aiql-ingest` ingestor on another thread) publish *new* snapshots and
/// never mutate the pinned one, so they become visible to the *next*
/// query, never mid-query — and, symmetrically, a long-running query never
/// delays a flush. N reader threads can call this against the same handle
/// with zero lock contention while ingestion runs. The returned
/// [`LiveOutcome::stamp`] records exactly which prefix of the stream the
/// result reflects.
pub fn run_live(
    store: &SharedStore,
    config: EngineConfig,
    source: &str,
) -> Result<LiveOutcome, EngineError> {
    let snapshot = store.read();
    let stamp = snapshot.stamp();
    let outcome = Engine::with_config(&snapshot, config).run_outcome(source)?;
    debug_assert_eq!(snapshot.stamp(), stamp, "pinned snapshots are immutable");
    Ok(LiveOutcome { outcome, stamp })
}

/// Opens the store persisted at `dir` — newest snapshot plus write-ahead
/// log tail, tolerating a torn final record — ready to query.
///
/// The open-from-disk entrypoint: wrap the result in [`Engine::new`] (or
/// [`Engine::with_config`]) to investigate a store directory left behind
/// by a stopped or crashed ingestion pipeline. Open/recovery failures name
/// the directory — an investigator pointed at the wrong path (or a
/// corrupted store) sees *which* store refused to open, not a bare errno.
pub fn open_store(dir: impl AsRef<std::path::Path>) -> Result<EventStore, EngineError> {
    let dir = dir.as_ref();
    EventStore::open(dir)
        .map_err(|e| EngineError::Recovery(format!("opening store at `{}`: {e}", dir.display())))
}

/// Opens the store persisted at `dir` and runs one query against it — the
/// one-shot post-mortem combinator over [`open_store`].
pub fn run_persisted(
    dir: impl AsRef<std::path::Path>,
    config: EngineConfig,
    source: &str,
) -> Result<Outcome, EngineError> {
    let store = open_store(dir)?;
    Engine::with_config(&store, config).run_outcome(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_model::{AgentId, Dataset, Entity, EntityKind, Event, OpType, Timestamp, Value};
    use aiql_storage::StoreConfig;

    /// The paper's c5 exfiltration chain plus beaconing traffic for anomaly
    /// detection, over two hosts and two days.
    fn dataset() -> Dataset {
        let mut d = Dataset::new();
        let a = AgentId(9);
        let t0 = Timestamp::from_ymd(2017, 1, 2).unwrap().0;
        let s = 1_000_000_000i64;

        let cmd = d.add_entity(Entity::process(1.into(), a, "cmd.exe", 10));
        let osql = d.add_entity(Entity::process(2.into(), a, "osql.exe", 11));
        let sql = d.add_entity(Entity::process(3.into(), a, "sqlservr.exe", 12));
        let sbblv = d.add_entity(Entity::process(4.into(), a, "sbblv.exe", 13));
        let dump = d.add_entity(Entity::file(5.into(), a, "C:\\db\\BACKUP1.DMP"));
        let evil = d.add_entity(Entity::netconn(
            6.into(),
            a,
            "10.1.1.2",
            49999,
            "10.10.1.129",
            443,
        ));

        let mut eid = 0u64;
        let mut ev = |d: &mut Dataset, s_, op, o, k, t: i64, amount: i64| {
            eid += 1;
            d.add_event(Event::new(eid.into(), a, s_, op, o, k, Timestamp(t)).with_amount(amount));
        };
        ev(
            &mut d,
            cmd,
            OpType::Start,
            osql,
            EntityKind::Process,
            t0 + 10 * s,
            0,
        );
        ev(
            &mut d,
            sql,
            OpType::Write,
            dump,
            EntityKind::File,
            t0 + 20 * s,
            1 << 20,
        );
        ev(
            &mut d,
            sbblv,
            OpType::Read,
            dump,
            EntityKind::File,
            t0 + 30 * s,
            1 << 20,
        );
        // Beaconing: small transfers every 10 s, then a big exfil spike.
        for i in 0..60i64 {
            ev(
                &mut d,
                sbblv,
                OpType::Write,
                evil,
                EntityKind::NetConn,
                t0 + 40 * s + i * 10 * s,
                1_000,
            );
        }
        ev(
            &mut d,
            sbblv,
            OpType::Write,
            evil,
            EntityKind::NetConn,
            t0 + 700 * s,
            50_000_000,
        );
        // Background noise on another agent/day.
        let b = AgentId(3);
        let t1 = Timestamp::from_ymd(2017, 1, 1).unwrap().0;
        let bash = d.add_entity(Entity::process(100.into(), b, "bash", 500));
        for i in 0..40u64 {
            let f = d.add_entity(Entity::file((200 + i).into(), b, format!("/var/tmp/n{i}")));
            d.add_event(Event::new(
                (1000 + i).into(),
                b,
                bash,
                OpType::Write,
                f,
                EntityKind::File,
                Timestamp(t1 + i as i64 * s),
            ));
        }
        d
    }

    fn store() -> EventStore {
        EventStore::ingest(&dataset(), StoreConfig::partitioned()).unwrap()
    }

    #[test]
    fn paper_query7_finds_exfiltration_chain() {
        let store = store();
        for config in [EngineConfig::aiql(), EngineConfig::fetch_filter()] {
            let engine = Engine::with_config(&store, config);
            let r = engine
                .run(
                    r#"
                    (at "01/02/2017")
                    agentid = 9
                    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
                    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
                    proc p4["%sbblv.exe"] read file f1 as evt3
                    proc p4 read || write ip i1[dstip = "10.10.1.129"] as evt4
                    with evt1 before evt2, evt2 before evt3, evt3 before evt4
                    return distinct p1, p2, p3, f1, p4, i1
                    "#,
                )
                .unwrap();
            assert_eq!(r.rows.len(), 1);
            assert_eq!(
                r.rows[0],
                vec![
                    Value::str("cmd.exe"),
                    Value::str("osql.exe"),
                    Value::str("sqlservr.exe"),
                    Value::str("C:\\db\\BACKUP1.DMP"),
                    Value::str("sbblv.exe"),
                    Value::str("10.10.1.129"),
                ]
            );
        }
    }

    #[test]
    fn anomaly_query5_flags_only_the_spike() {
        let store = store();
        let engine = Engine::new(&store);
        let r = engine
            .run(
                r#"
                (at "01/02/2017")
                agentid = 9
                window = 1 min, step = 10 sec
                proc p write ip i[dstip = "10.10.1.129"] as evt
                return p, avg(evt.amount) as amt
                group by p
                having amt > 2 * (amt + amt[1] + amt[2]) / 3
                "#,
            )
            .unwrap();
        assert!(!r.rows.is_empty(), "the 50 MB burst must alert");
        assert!(r.rows.iter().all(|row| row[0] == Value::str("sbblv.exe")));
        // Alerted averages are far above the 1 kB beacon noise.
        assert!(r
            .rows
            .iter()
            .all(|row| row[1].as_f64().unwrap() > 100_000.0));
        // And the number of alerting windows is small (the spike region
        // only: 6 sliding windows cover any instant at step 10 s / 1 min).
        assert!(r.rows.len() <= 8, "got {} alert rows", r.rows.len());
    }

    #[test]
    fn dependency_query_tracks_dump_provenance() {
        let store = store();
        let engine = Engine::new(&store);
        let r = engine
            .run(
                r#"
                (at "01/02/2017")
                forward: proc p1["%sqlservr.exe"] ->[write] file f1["%backup1.dmp"]
                <-[read] proc p2 ->[write] ip i1
                return p1, f1, p2, i1
                "#,
            )
            .unwrap();
        assert!(!r.rows.is_empty());
        assert_eq!(r.rows[0][2], Value::str("sbblv.exe"));
        assert_eq!(r.rows[0][3], Value::str("10.10.1.129"));
    }

    #[test]
    fn count_and_group_by_aggregates() {
        let store = store();
        let engine = Engine::new(&store);
        let r = engine
            .run(r#"(at "01/01/2017") agentid = 3 proc p write file f return count distinct p, f"#)
            .unwrap();
        assert_eq!(r.columns, vec!["count"]);
        assert_eq!(r.rows, vec![vec![Value::Int(40)]]);

        let r = engine
            .run(
                r#"(at "01/01/2017") agentid = 3 proc p write file f
                   return p, count(f) as n group by p"#,
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::str("bash"), Value::Int(40)]]);
    }

    #[test]
    fn sort_and_top() {
        let store = store();
        let engine = Engine::new(&store);
        let r = engine
            .run(
                r#"(at "01/01/2017") proc p write file f return distinct f
                   sort by f desc top 3"#,
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::str("/var/tmp/n9"));
    }

    #[test]
    fn timeout_budget_enforced() {
        // A pathological pair of unconstrained patterns with a non-equi
        // relation on a larger store.
        let mut d = dataset();
        let a = AgentId(9);
        let s = 1_000_000_000i64;
        let t0 = Timestamp::from_ymd(2017, 1, 2).unwrap().0;
        let p = d.add_entity(Entity::process(9000.into(), a, "noise.exe", 1));
        for i in 0..3000u64 {
            let f = d.add_entity(Entity::file((10_000 + i).into(), a, format!("/n/{i}")));
            d.add_event(Event::new(
                (50_000 + i).into(),
                a,
                p,
                OpType::Read,
                f,
                EntityKind::File,
                Timestamp(t0 + i as i64 * s / 100),
            ));
        }
        let store = EventStore::ingest(&d, StoreConfig::partitioned()).unwrap();
        let engine = Engine::with_config(
            &store,
            EngineConfig::fetch_filter().with_budget(Duration::from_millis(5)),
        );
        let r = engine.run(
            "proc p1 read file f1 as e1 proc p2 read file f2 as e2 \
             proc p3 read file f3 as e3 with e1 before e2, e2 before e3 \
             return count p1",
        );
        assert!(
            matches!(r, Err(EngineError::Timeout) | Err(EngineError::Resource)),
            "got {r:?}"
        );
    }

    #[test]
    fn compile_errors_surface() {
        let store = store();
        let engine = Engine::new(&store);
        assert!(matches!(
            engine.run("proc p frobnicate file f return p"),
            Err(EngineError::Compile(_))
        ));
    }

    #[test]
    fn run_live_sees_growing_store_between_queries() {
        let shared = SharedStore::new(store());
        let q = r#"(at "01/02/2017") agentid = 9 proc p4["%sbblv.exe"] read file f1 return p4, f1"#;
        let first = run_live(&shared, EngineConfig::aiql(), q).unwrap();
        assert_eq!(first.outcome.result.rows.len(), 1);

        // Append a second qualifying read; the next query sees it, and the
        // stamps prove the two queries ran at different store versions.
        {
            let mut w = shared.write();
            let t = Timestamp::from_ymd(2017, 1, 2).unwrap();
            w.append_event(&Event::new(
                9_999.into(),
                AgentId(9),
                4.into(),
                OpType::Read,
                5.into(),
                EntityKind::File,
                Timestamp(t.0 + 60 * 1_000_000_000),
            ))
            .unwrap();
        }
        let second = run_live(&shared, EngineConfig::aiql(), q).unwrap();
        assert!(second.stamp > first.stamp);
        assert_eq!(second.outcome.result.rows.len(), 2);
    }

    #[test]
    fn segmented_engine_matches_single_node() {
        let d = dataset();
        let single = EventStore::ingest(&d, StoreConfig::partitioned()).unwrap();
        let seg = SegmentedStore::ingest(&d, 4, true).unwrap();
        let q = r#"(at "01/02/2017") proc p4["%sbblv.exe"] read file f1 return p4, f1"#;
        let a = Engine::new(&single).run(q).unwrap();
        let b = Engine::segmented(&seg, EngineConfig::aiql())
            .run(q)
            .unwrap();
        let norm = |mut r: EngineResult| {
            r.rows.sort();
            r.rows
        };
        assert_eq!(norm(a), norm(b));
    }

    #[test]
    fn open_store_errors_name_the_directory() {
        let missing = std::env::temp_dir().join("aiql-engine-no-such-store");
        let _ = std::fs::remove_dir_all(&missing);
        let err = open_store(&missing).expect_err("nothing persisted there");
        match err {
            EngineError::Recovery(msg) => assert!(
                msg.contains("aiql-engine-no-such-store"),
                "error must name the directory: {msg}"
            ),
            other => panic!("expected a recovery error, got {other:?}"),
        }
    }
}
