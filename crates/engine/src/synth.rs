//! Data-query synthesis: one storage query per event pattern (paper
//! Sec. 5.1).
//!
//! For every event pattern the engine synthesizes a *data query*: predicate
//! sets over the `events` table and the subject/object entity tables,
//! derived from the pattern's constraints, operation set, time window, and
//! agent set. The scheduler may add *extra* constraints (IN-lists on join
//! keys, narrowed time bounds) before execution — the "leveraging existing
//! results to narrow the search scope" of Algorithm 1.

use aiql_core::ast::CmpOp as AstCmp;
use aiql_core::{CstrNode, PatternCtx};
use aiql_model::{EntityKind, Value};
use aiql_rdb::{CmpOp, Expr, Prune, Schema};
use aiql_storage::schema;

/// The synthesized data query for one event pattern.
#[derive(Debug, Clone, Default)]
pub struct DataQuery {
    /// Conjuncts over the events table layout.
    pub event: Vec<Expr>,
    /// Conjuncts over the processes table layout (subject side).
    pub subject: Vec<Expr>,
    /// Conjuncts over the object entity table layout.
    pub object: Vec<Expr>,
    /// Partition pruning hints for the events scan.
    pub prune: Prune,
}

/// Extra constraints injected by the scheduler before execution.
#[derive(Debug, Clone, Default)]
pub struct ExtraCstr {
    /// IN-list constraints: (match-row side, column within that side's
    /// table, admissible values).
    pub in_lists: Vec<(Side, usize, Vec<Value>)>,
    /// Narrowed event start-time bounds (inclusive nanoseconds).
    pub time_lo: Option<i64>,
    pub time_hi: Option<i64>,
}

/// Which sub-scan an extra constraint applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Event,
    Subject,
    Object,
}

fn cmp_op(op: AstCmp) -> CmpOp {
    match op {
        AstCmp::Eq => CmpOp::Eq,
        AstCmp::Ne => CmpOp::Ne,
        AstCmp::Lt => CmpOp::Lt,
        AstCmp::Le => CmpOp::Le,
        AstCmp::Gt => CmpOp::Gt,
        AstCmp::Ge => CmpOp::Ge,
    }
}

/// Converts a normalized constraint into an rdb expression over `schema`.
pub fn cstr_to_expr(c: &CstrNode, schema_ref: &Schema) -> Option<Expr> {
    Some(match c {
        CstrNode::Cmp { attr, op, value } => {
            let col = schema_ref.position(schema::column_for_attr(attr))?;
            Expr::Cmp(
                cmp_op(*op),
                Box::new(Expr::Col(col)),
                Box::new(Expr::Lit(value.clone())),
            )
        }
        CstrNode::Like { attr, pattern, neg } => {
            let col = schema_ref.position(schema::column_for_attr(attr))?;
            if *neg {
                Expr::NotLike(Box::new(Expr::Col(col)), pattern.clone())
            } else {
                Expr::Like(Box::new(Expr::Col(col)), pattern.clone())
            }
        }
        CstrNode::In { attr, neg, values } => {
            let col = schema_ref.position(schema::column_for_attr(attr))?;
            if *neg {
                Expr::NotIn(Box::new(Expr::Col(col)), values.clone())
            } else {
                Expr::In(Box::new(Expr::Col(col)), values.clone())
            }
        }
        CstrNode::And(cs) => Expr::And(
            cs.iter()
                .map(|x| cstr_to_expr(x, schema_ref))
                .collect::<Option<Vec<_>>>()?,
        ),
        CstrNode::Or(cs) => Expr::Or(
            cs.iter()
                .map(|x| cstr_to_expr(x, schema_ref))
                .collect::<Option<Vec<_>>>()?,
        ),
        CstrNode::Not(inner) => Expr::Not(Box::new(cstr_to_expr(inner, schema_ref)?)),
    })
}

/// Entity-table schema for a kind (static, cheap clones avoided by caller).
pub fn entity_schema(kind: EntityKind) -> Schema {
    match kind {
        EntityKind::Process => schema::processes_schema(),
        EntityKind::File => schema::files_schema(),
        EntityKind::NetConn => schema::netconns_schema(),
    }
}

/// Synthesizes the data query for one pattern.
pub fn synthesize(p: &PatternCtx) -> DataQuery {
    let ev_schema = schema::events_schema();
    let mut q = DataQuery::default();

    // Operation set: an IN over the op codes (omitted when all ops match).
    if p.ops.len() < aiql_model::event::ALL_OPS.len() {
        let codes: Vec<Value> = p
            .ops
            .iter()
            .map(|o| Value::Int(schema::opcode(*o)))
            .collect();
        q.event
            .push(Expr::In(Box::new(Expr::Col(schema::ev::OPTYPE)), codes));
    }
    // Object kind discriminator.
    q.event.push(Expr::cmp_lit(
        schema::ev::OBJKIND,
        CmpOp::Eq,
        schema::kind_code(p.object_kind),
    ));
    // Time window → conjuncts + partition pruning.
    if let Some((lo, hi)) = p.window {
        q.event
            .push(Expr::cmp_lit(schema::ev::START, CmpOp::Ge, lo));
        q.event
            .push(Expr::cmp_lit(schema::ev::START, CmpOp::Lt, hi));
        q.prune.day_lo = Some(lo.div_euclid(aiql_rdb::partition::NANOS_PER_DAY));
        q.prune.day_hi = Some((hi - 1).div_euclid(aiql_rdb::partition::NANOS_PER_DAY));
    }
    // Agent set.
    if let Some(agents) = &p.agents {
        if agents.len() == 1 {
            q.event
                .push(Expr::cmp_lit(schema::ev::AGENT, CmpOp::Eq, agents[0]));
        } else {
            q.event.push(Expr::In(
                Box::new(Expr::Col(schema::ev::AGENT)),
                agents.iter().map(|a| Value::Int(*a)).collect(),
            ));
        }
        q.prune.agents = Some(agents.clone());
    }
    // Event-level constraints.
    for c in &p.evt_cstr {
        if let Some(e) = cstr_to_expr(c, &ev_schema) {
            q.event.push(e);
        }
    }
    // Subject constraints (incl. agent narrowing on the entity side).
    let proc_schema = schema::processes_schema();
    for c in &p.subj_cstr {
        if let Some(e) = cstr_to_expr(c, &proc_schema) {
            q.subject.push(e);
        }
    }
    // Object constraints.
    let obj_schema = entity_schema(p.object_kind);
    for c in &p.obj_cstr {
        if let Some(e) = cstr_to_expr(c, &obj_schema) {
            q.object.push(e);
        }
    }
    q
}

/// Applies scheduler-injected extra constraints to a synthesized query.
pub fn apply_extra(q: &mut DataQuery, extra: &ExtraCstr) {
    for (side, col, values) in &extra.in_lists {
        let e = Expr::In(Box::new(Expr::Col(*col)), values.clone());
        match side {
            Side::Event => q.event.push(e),
            Side::Subject => q.subject.push(e),
            Side::Object => q.object.push(e),
        }
    }
    if let Some(lo) = extra.time_lo {
        q.event
            .push(Expr::cmp_lit(schema::ev::START, CmpOp::Ge, lo));
        let day = lo.div_euclid(aiql_rdb::partition::NANOS_PER_DAY);
        q.prune.day_lo = Some(q.prune.day_lo.map_or(day, |d| d.max(day)));
    }
    if let Some(hi) = extra.time_hi {
        q.event
            .push(Expr::cmp_lit(schema::ev::START, CmpOp::Le, hi));
        let day = hi.div_euclid(aiql_rdb::partition::NANOS_PER_DAY);
        q.prune.day_hi = Some(q.prune.day_hi.map_or(day, |d| d.min(day)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiql_core::compile;

    fn pattern(src: &str) -> PatternCtx {
        compile(src).unwrap().patterns.remove(0)
    }

    #[test]
    fn synthesize_query5_style_pattern() {
        let ctx = compile(
            r#"
            (at "01/01/2017")
            agentid = 9
            proc p write ip i[dstip = "10.0.0.129"] as evt
            return p, avg(evt.amount) as amt
            group by p
            "#,
        )
        .unwrap();
        let q = synthesize(&ctx.patterns[0]);
        // op IN, objkind, 2 time bounds, agent eq.
        assert_eq!(q.event.len(), 5);
        assert_eq!(q.object.len(), 1);
        assert!(q.subject.is_empty());
        assert_eq!(q.prune.agents, Some(vec![9]));
        assert!(q.prune.day_lo.is_some());
        assert_eq!(q.prune.day_lo, q.prune.day_hi);
    }

    #[test]
    fn all_ops_pattern_omits_op_filter() {
        let p = pattern("proc p !read || read file f return p");
        let q = synthesize(&p);
        // No op filter, only objkind.
        assert_eq!(q.event.len(), 1);
    }

    #[test]
    fn extra_constraints_narrow() {
        let p = pattern(r#"(at "01/01/2017") proc p read file f return p"#);
        let mut q = synthesize(&p);
        let before = q.event.len();
        let extra = ExtraCstr {
            in_lists: vec![(Side::Event, schema::ev::SUBJECT, vec![Value::Int(5)])],
            time_lo: Some(100),
            time_hi: None,
        };
        apply_extra(&mut q, &extra);
        assert_eq!(q.event.len(), before + 2);
    }

    #[test]
    fn cstr_to_expr_handles_connectives() {
        let s = schema::processes_schema();
        let c = CstrNode::Or(vec![
            CstrNode::Like {
                attr: "exe_name".into(),
                pattern: "%a%".into(),
                neg: false,
            },
            CstrNode::Not(Box::new(CstrNode::Cmp {
                attr: "pid".into(),
                op: AstCmp::Eq,
                value: Value::Int(1),
            })),
        ]);
        let e = cstr_to_expr(&c, &s).unwrap();
        let row = vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(99),
            Value::str("bash"),
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        assert!(e.matches(&row), "NOT(pid = 1) holds for pid = 99");
    }

    #[test]
    fn unknown_attr_returns_none() {
        let s = schema::processes_schema();
        let c = CstrNode::Cmp {
            attr: "nonexistent".into(),
            op: AstCmp::Eq,
            value: Value::Int(1),
        };
        assert!(cstr_to_expr(&c, &s).is_none());
    }
}
