//! Engine error type.

use aiql_core::AiqlError;
use aiql_rdb::RdbError;
use aiql_storage::PersistError;
use std::fmt;

/// Errors from compiling or executing an AIQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query failed to parse or analyze.
    Compile(AiqlError),
    /// The storage layer failed.
    Storage(RdbError),
    /// Opening a persisted store failed (missing directory, corrupt
    /// snapshot, unreadable log). Carries the rendered cause —
    /// [`PersistError`] holds `io::Error`, which is neither `Clone` nor
    /// `PartialEq`.
    Recovery(String),
    /// The execution deadline elapsed.
    Timeout,
    /// A tuple set or intermediate result exceeded the memory budget —
    /// reported like a did-not-finish baseline run.
    Resource,
    /// The query uses a feature the engine cannot execute.
    Unsupported(String),
    /// A scatter worker panicked. The panic is caught on the worker (the
    /// pool thread survives; sibling tasks of the same scatter finish or
    /// drain first) and re-surfaced here with the panic payload, instead
    /// of aborting the whole process as the old `join().expect(..)` did.
    Worker(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(e) => write!(f, "compile error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Recovery(m) => write!(f, "recovery error: {m}"),
            EngineError::Timeout => write!(f, "query exceeded its execution deadline"),
            EngineError::Resource => write!(f, "query exceeded its intermediate-result budget"),
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Worker(m) => write!(f, "scatter worker panicked: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AiqlError> for EngineError {
    fn from(e: AiqlError) -> Self {
        EngineError::Compile(e)
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        EngineError::Recovery(e.to_string())
    }
}

impl From<RdbError> for EngineError {
    fn from(e: RdbError) -> Self {
        match e {
            RdbError::Timeout => EngineError::Timeout,
            RdbError::ResourceLimit => EngineError::Resource,
            other => EngineError::Storage(other),
        }
    }
}
