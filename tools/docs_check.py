#!/usr/bin/env python3
"""Offline documentation checker for the AIQL repo.

Run from anywhere: paths are resolved relative to the repo root (the
parent of this file's directory). Exits nonzero on the first category of
failure, printing every broken item it found. Checks, over README.md and
docs/*.md:

1. Every relative markdown link `[text](target)` resolves to a file that
   exists (query strings are rejected; absolute URLs are skipped).
2. Every intra-repo anchor `file.md#anchor` (or bare `#anchor`) resolves
   to a heading in the target file, using GitHub's slugging rules
   (lowercase, spaces to dashes, punctuation dropped).
3. Every `aiql-<name>` crate mentioned in ARCHITECTURE.md's crate table
   has a matching `crates/<name>` directory (the facade crate `aiql`
   itself lives at the workspace root).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CRATE_ROW_RE = re.compile(r"^\|\s*`(aiql-[a-z0-9-]+)`")


def github_slug(heading: str) -> str:
    """GitHub heading-to-anchor slugging: strip markup, lowercase, drop
    punctuation, spaces become dashes."""
    text = re.sub(r"[`*_]", "", heading).strip()
    # Drop a trailing "{#custom}" style id if ever used.
    text = re.sub(r"\{#[^}]*\}\s*$", "", text).strip()
    slug = []
    for ch in text.lower():
        if ch.isalnum():
            slug.append(ch)
        elif ch in (" ", "-"):
            slug.append("-")
        # everything else (punctuation) is dropped
    return "".join(slug)


def anchors_of(path: Path) -> set:
    anchors, seen = set(), {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    errors = []
    anchor_cache = {}

    def anchors_for(p: Path) -> set:
        key = p.resolve()
        if key not in anchor_cache:
            anchor_cache[key] = anchors_of(p)
        return anchor_cache[key]

    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(REPO)}: expected doc file is missing")
            continue
        for lineno, target in links_of(doc):
            where = f"{doc.relative_to(REPO)}:{lineno}"
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path_part, _, anchor = target.partition("#")
            if "?" in path_part:
                errors.append(f"{where}: query string in link target `{target}`")
                continue
            dest = doc if path_part == "" else (doc.parent / path_part)
            if not dest.exists():
                errors.append(f"{where}: broken link `{target}` (no such file)")
                continue
            if anchor:
                if dest.is_dir() or dest.suffix != ".md":
                    errors.append(f"{where}: anchor on non-markdown target `{target}`")
                elif anchor not in anchors_for(dest):
                    errors.append(f"{where}: broken anchor `{target}`")

    arch = REPO / "docs" / "ARCHITECTURE.md"
    if arch.exists():
        named = []
        for line in arch.read_text(encoding="utf-8").splitlines():
            m = CRATE_ROW_RE.match(line)
            if m:
                named.append(m.group(1))
        if not named:
            errors.append("docs/ARCHITECTURE.md: crate table lists no `aiql-*` crates")
        for crate in named:
            suffix = crate[len("aiql-"):]
            if not (REPO / "crates" / suffix / "Cargo.toml").exists():
                errors.append(
                    f"docs/ARCHITECTURE.md: crate table names `{crate}` "
                    f"but crates/{suffix}/Cargo.toml does not exist"
                )
    else:
        errors.append("docs/ARCHITECTURE.md is missing")

    if errors:
        print(f"docs_check: {len(errors)} problem(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    checked = ", ".join(str(d.relative_to(REPO)) for d in DOC_FILES)
    print(f"docs_check: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
